#include "net/datagram.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace xorec::net {

// ---- socket helpers --------------------------------------------------------

namespace {

sockaddr_in to_sockaddr(const UdpAddress& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.ip);
  sa.sin_port = htons(a.port);
  return sa;
}

}  // namespace

UdpAddress udp_address(const std::string& host, uint16_t port) {
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1)
    throw std::runtime_error("udp_address: not a dotted-quad IPv4 host: " + host);
  return UdpAddress{ntohl(addr.s_addr), port};
}

int open_udp_socket(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("open_udp_socket: socket() failed");
  // A loss sweep fans out bursts of k+m datagrams; a roomy receive buffer
  // keeps kernel drops out of the controlled-loss experiment.
  const int rcvbuf = 4 << 20;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  const sockaddr_in sa = to_sockaddr(udp_address(host, port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw std::runtime_error("open_udp_socket: bind() failed");
  }
  return fd;
}

uint16_t local_udp_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0)
    throw std::runtime_error("local_udp_port: getsockname() failed");
  return ntohs(sa.sin_port);
}

void close_socket(int fd) {
  if (fd >= 0) ::close(fd);
}

namespace {

/// Blocking recvfrom with a poll() timeout; returns bytes received, 0 on
/// timeout, -1 on error. Fills `from` when non-null.
ssize_t recv_datagram(int fd, uint8_t* buf, size_t cap, int timeout_ms,
                      sockaddr_in* from = nullptr) {
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return ready;  // 0 = timeout, <0 = error
  socklen_t from_len = from ? sizeof(*from) : 0;
  return ::recvfrom(fd, buf, cap, 0, reinterpret_cast<sockaddr*>(from),
                    from ? &from_len : nullptr);
}

}  // namespace

// ---- deterministic loss ----------------------------------------------------

namespace {

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool LossPolicy::drop(uint64_t packet_index) const {
  if (rate <= 0.0) return false;
  const double u =
      static_cast<double>(mix64(seed ^ mix64(packet_index + 1)) >> 11) * 0x1.0p-53;
  return u < rate;
}

// ---- group assembly --------------------------------------------------------

std::vector<uint32_t> StripeGroup::missing_data() const {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < k; ++i)
    if (!has(i)) ids.push_back(i);
  return ids;
}

std::vector<uint32_t> StripeGroup::present_ids() const {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < k + m; ++i)
    if (has(i)) ids.push_back(i);
  return ids;
}

std::optional<StripeGroup> GroupAssembler::feed(const uint8_t* data, size_t len) {
  PacketView view;
  if (decode_packet(data, len, view) != FrameError::Ok) {
    ++stats_.crc_drops;
    return std::nullopt;
  }
  const PacketHeader& h = view.header;
  if (h.flags & kPacketFlagAck) return std::nullopt;  // not ours to assemble
  ++stats_.packets_received;
  stats_.bytes_received += len;

  const bool marker = (h.flags & kPacketFlagGroupEnd) != 0;
  auto it = pending_.find(h.group);
  if (it == pending_.end()) {
    if (!marker && h.payload_len == 0) {  // a strip carries bytes, always
      ++stats_.mismatch_drops;
      return std::nullopt;
    }
    StripeGroup g;
    g.group = h.group;
    g.spec.assign(view.spec);
    g.k = h.k;
    g.m = h.m;
    // A marker-created group saw every strip lost: no frag_len to size an
    // arena from, and recover_group will report it empty.
    g.frag_len = marker ? 0 : h.payload_len;
    if (g.frag_len)
      g.arena.assign(static_cast<size_t>(g.k + g.m) * g.frag_len, 0);
    it = pending_.emplace(h.group, std::move(g)).first;
  }
  StripeGroup& g = it->second;
  if (h.k != g.k || h.m != g.m || view.spec != g.spec ||
      (!marker && h.payload_len != g.frag_len)) {
    ++stats_.mismatch_drops;
    return std::nullopt;
  }

  if (marker) {
    g.strips_sent = h.strip;
    StripeGroup done = std::move(g);
    pending_.erase(it);
    ++stats_.groups_completed;
    return done;
  }

  if (g.has(h.strip)) {
    ++stats_.duplicate_strips;
    return std::nullopt;
  }
  std::memcpy(g.slot(h.strip), view.payload.data(), h.payload_len);
  g.have |= uint64_t{1} << h.strip;
  ++g.strips_received;
  return std::nullopt;
}

// ---- degraded read ---------------------------------------------------------

RecoveryResult recover_group(StripeGroup& group, const ServiceHandle& handle) {
  RecoveryResult r;
  if (group.frag_len == 0 || group.strips_received == 0) {
    r.error = "unrecoverable: every strip of the group was lost";
    return r;
  }
  const Codec& codec = handle.codec();
  if (codec.data_fragments() != group.k || codec.parity_fragments() != group.m) {
    r.error = "geometry mismatch: spec disagrees with packet k/m";
    return r;
  }
  if (group.frag_len % codec.fragment_multiple() != 0) {
    r.error = "geometry mismatch: frag_len violates codec fragment_multiple";
    return r;
  }

  const std::vector<uint32_t> missing = group.missing_data();
  if (missing.empty()) {  // intact delivery, nothing to rebuild
    r.complete = true;
    return r;
  }

  const std::vector<uint32_t> available = group.present_ids();
  std::shared_ptr<const ReconstructPlan> plan;
  try {
    plan = handle.plan_reconstruct(available, missing);
  } catch (const std::exception& e) {
    r.error = std::string("unrecoverable: ") + e.what();
    return r;
  }

  std::vector<const uint8_t*> avail_ptrs;
  avail_ptrs.reserve(available.size());
  for (uint32_t id : available) avail_ptrs.push_back(group.slot(id));
  std::vector<uint8_t*> out_ptrs;
  out_ptrs.reserve(missing.size());
  for (uint32_t id : missing) out_ptrs.push_back(group.slot(id));

  try {
    handle.reconstruct(plan, avail_ptrs.data(), out_ptrs.data(), group.frag_len).get();
  } catch (const std::exception& e) {
    r.error = std::string("reconstruct failed: ") + e.what();
    return r;
  }
  for (uint32_t id : missing) group.have |= uint64_t{1} << id;
  r.complete = true;
  r.degraded = true;
  r.reconstructed = static_cast<uint32_t>(missing.size());
  return r;
}

// ---- sender ----------------------------------------------------------------

DatagramSender::DatagramSender(int fd, UdpAddress dest, ServiceHandle handle,
                               LossPolicy loss)
    : fd_(fd), dest_(dest), handle_(std::move(handle)), loss_(loss) {}

void DatagramSender::send_packet(const std::vector<uint8_t>& packet) {
  const sockaddr_in sa = to_sockaddr(dest_);
  if (::sendto(fd_, packet.data(), packet.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0)
    throw std::runtime_error("DatagramSender: sendto() failed");
  stats_.bytes_sent += packet.size();
}

void DatagramSender::send_strip_packet(uint64_t group, uint32_t strip,
                                       const uint8_t* payload, size_t frag_len,
                                       bool retransmit) {
  // Every strip packet — including a retransmission — rolls against the
  // loss policy; only then does selective-repeat pay its true cost.
  const bool dropped = loss_.drop(eligible_index_++);
  if (retransmit) ++stats_.retransmissions;
  if (dropped) {
    ++stats_.packets_dropped;
    return;
  }
  const uint32_t k = handle_.codec().data_fragments();
  PacketHeader h;
  h.flags = strip >= k ? kPacketFlagParity : 0;
  h.group = group;
  h.strip = strip;
  h.k = k;
  h.m = handle_.codec().parity_fragments();
  send_packet(build_packet(h, handle_.spec(),
                           std::span<const uint8_t>(payload, frag_len)));
  ++stats_.packets_sent;
}

uint64_t DatagramSender::send_stripe(const uint8_t* const* data, size_t frag_len,
                                     bool with_parity) {
  const Codec& codec = handle_.codec();
  const uint32_t k = codec.data_fragments();
  const uint32_t m = codec.parity_fragments();
  const uint64_t group = next_group_++;

  std::vector<uint8_t> parity_arena;
  std::vector<uint8_t*> parity_ptrs;
  if (with_parity) {
    parity_arena.assign(static_cast<size_t>(m) * frag_len, 0);
    parity_ptrs.reserve(m);
    for (uint32_t i = 0; i < m; ++i)
      parity_ptrs.push_back(parity_arena.data() + static_cast<size_t>(i) * frag_len);
    handle_.encode(data, parity_ptrs.data(), frag_len).get();
  }

  for (uint32_t i = 0; i < k; ++i)
    send_strip_packet(group, i, data[i], frag_len, /*retransmit=*/false);
  if (with_parity)
    for (uint32_t i = 0; i < m; ++i)
      send_strip_packet(group, k + i, parity_ptrs[i], frag_len, /*retransmit=*/false);

  send_group_end(group, with_parity ? k + m : k);
  ++stats_.stripes_sent;
  return group;
}

void DatagramSender::resend_strip(uint64_t group, uint32_t strip,
                                  const uint8_t* payload, size_t frag_len) {
  send_strip_packet(group, strip, payload, frag_len, /*retransmit=*/true);
}

void DatagramSender::send_group_end(uint64_t group, uint32_t strips_sent) {
  PacketHeader h;
  h.flags = kPacketFlagGroupEnd;
  h.group = group;
  h.strip = strips_sent;
  h.k = handle_.codec().data_fragments();
  h.m = handle_.codec().parity_fragments();
  send_packet(build_packet(h, handle_.spec(), {}));
  ++stats_.markers_sent;
}

// ---- receiver --------------------------------------------------------------

DatagramReceiver::DatagramReceiver(int fd, CodecService& service)
    : fd_(fd), service_(service) {}

std::optional<GroupResult> DatagramReceiver::receive_group(int timeout_ms) {
  uint8_t buf[wire::kMaxDatagram];
  for (;;) {
    const ssize_t n = recv_datagram(fd_, buf, sizeof(buf), timeout_ms);
    if (n <= 0) return std::nullopt;  // timeout (or socket error)
    auto done = assembler_.feed(buf, static_cast<size_t>(n));
    if (!done) continue;

    GroupResult result;
    result.group = std::move(*done);
    auto it = handles_.find(result.group.spec);
    if (it == handles_.end()) {
      try {
        it = handles_.emplace(result.group.spec, service_.acquire(result.group.spec))
                 .first;
      } catch (const std::exception& e) {
        result.recovery.error = std::string("bad spec: ") + e.what();
        ++stats_.groups;
        ++stats_.groups_unrecoverable;
        return result;
      }
    }
    result.recovery = recover_group(result.group, it->second);
    it->second.note_net_request(
        static_cast<uint64_t>(result.group.strips_received) * result.group.frag_len,
        static_cast<uint64_t>(result.recovery.reconstructed) * result.group.frag_len);
    ++stats_.groups;
    if (result.recovery.degraded) {
      ++stats_.degraded_reads;
      stats_.strips_reconstructed += result.recovery.reconstructed;
    }
    if (!result.recovery.complete) ++stats_.groups_unrecoverable;
    return result;
  }
}

// ---- receipts ---------------------------------------------------------------

std::vector<uint8_t> build_ack_packet(const GroupAck& ack, uint32_t k, uint32_t m) {
  uint8_t body[12];
  for (int i = 0; i < 4; ++i) {
    body[i] = static_cast<uint8_t>(ack.strips_received >> (8 * i));
    body[4 + i] = static_cast<uint8_t>(ack.strips_reconstructed >> (8 * i));
    body[8 + i] = static_cast<uint8_t>(ack.status >> (8 * i));
  }
  PacketHeader h;
  h.flags = kPacketFlagAck;
  h.group = ack.group;
  h.strip = ack.strips_received;
  h.k = k;
  h.m = m;
  return build_packet(h, {}, std::span<const uint8_t>(body, sizeof(body)));
}

bool parse_ack(const PacketView& view, GroupAck& out) {
  if (!(view.header.flags & kPacketFlagAck)) return false;
  if (view.payload.size() != 12) return false;
  out.group = view.header.group;
  out.strips_received = out.strips_reconstructed = out.status = 0;
  for (int i = 0; i < 4; ++i) {
    out.strips_received |= static_cast<uint32_t>(view.payload[i]) << (8 * i);
    out.strips_reconstructed |= static_cast<uint32_t>(view.payload[4 + i]) << (8 * i);
    out.status |= static_cast<uint32_t>(view.payload[8 + i]) << (8 * i);
  }
  return true;
}

std::optional<GroupAck> recv_ack(int fd, int timeout_ms) {
  uint8_t buf[wire::kMaxDatagram];
  for (;;) {
    const ssize_t n = recv_datagram(fd, buf, sizeof(buf), timeout_ms);
    if (n <= 0) return std::nullopt;
    PacketView view;
    if (decode_packet(buf, static_cast<size_t>(n), view) != FrameError::Ok) continue;
    GroupAck ack;
    if (parse_ack(view, ack)) return ack;
  }
}

}  // namespace xorec::net
