// Wire protocol for the network serving front-end: the byte formats BOTH
// transports speak, parsed defensively and viewed without copies.
//
// Two formats share this file because they share the validation rules and
// the CRC machinery:
//
//   TCP stripe frames (FrameHeader, 56-byte fixed header): one request or
//   response per frame — magic, version, type, request id, canonical spec
//   string, k/m/frag_len geometry, erasure + present fragment bitmaps, a
//   body CRC and a header CRC. The body is the spec bytes followed by
//   `payload_count` fragments of `frag_len` bytes each.
//
//   UDP stripe packets (PacketHeader, 44-byte fixed header): one strip per
//   datagram — group id (stripe sequence number), strip index, geometry,
//   spec, payload CRC. Group-end markers and receiver ACKs ride the same
//   header with flag bits.
//
// Parsing discipline (the attacker-facing boundary): decode_* never
// allocates — it reads a caller-owned buffer into a fixed-size struct and
// validates magic, version, CRCs and EVERY length field against the
// wire::kMax* limits before any caller would size a buffer from them. A
// frame that passes decode_header() can therefore be used to allocate at
// most wire::kMaxBody bytes, no matter what the peer sent.
//
// Zero-copy discipline: FrameView / PacketView bind spans into the caller's
// receive buffer — the spec and each payload fragment are views, not
// copies, so a server hands payload pointers straight into codec strip
// buffers (Codec::encode / ReconstructPlan::execute read them in place).
// Symmetrically, build_frame() gathers fragment pointers into one
// contiguous wire image so responses are written where they are sent from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xorec::net {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum both
/// wire formats carry. `seed` chains multi-buffer CRCs: crc32(b, ...,
/// crc32(a, ...)) == CRC of a||b.
uint32_t crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

namespace wire {

inline constexpr uint32_t kFrameMagic = 0x31434558u;   // "XEC1" little-endian
inline constexpr uint32_t kPacketMagic = 0x44434558u;  // "XECD" little-endian
inline constexpr uint16_t kVersion = 1;
inline constexpr size_t kFrameHeaderSize = 56;
inline constexpr size_t kPacketHeaderSize = 44;

// Hard limits every length field is validated against BEFORE any buffer is
// sized from it. A hostile peer can make a server allocate at most kMaxBody.
inline constexpr size_t kMaxSpecLen = 256;     // spec string / error message
inline constexpr size_t kMaxFragments = 64;    // k + m per stripe (codec-wide cap)
inline constexpr size_t kMaxFragLen = 16u << 20;   // bytes per fragment payload
inline constexpr size_t kMaxBody = 64u << 20;      // spec + all payloads, one frame
inline constexpr size_t kMaxDatagram = 60u * 1024; // whole UDP packet incl. header

}  // namespace wire

// ---- TCP stripe frames -----------------------------------------------------

enum class FrameType : uint16_t {
  EncodeRequest = 1,       // body: k data fragments; response carries parity
  ReconstructRequest = 2,  // body: survivor fragments; response carries rebuilt
  Response = 3,            // body: the fragments named by present_bitmap
  Error = 4,               // spec field carries the error message; no payloads
  Ping = 5,                // empty body round-trip (liveness / RTT probe)
  Pong = 6,
};

/// Parse/validation outcomes, ordered roughly by how early they fire.
enum class FrameError : uint8_t {
  Ok = 0,
  Truncated,      // fewer bytes than the fixed header / declared body
  BadMagic,
  BadVersion,
  BadType,
  BadCrc,         // header or body checksum mismatch
  LimitExceeded,  // a length field exceeds its wire::kMax* cap
  Inconsistent,   // fields disagree (bitmap vs count, overlapping id sets)
};
const char* frame_error_name(FrameError err);

/// The fixed 56-byte TCP frame header (all integers little-endian on the
/// wire). `present_bitmap` names the fragment ids of the body's payloads,
/// LSB-first ascending; `erased_bitmap` names the ids a reconstruct request
/// wants rebuilt (and a response echoes). k/m are advisory from clients
/// (0 = "server derives from spec"); servers fill them authoritatively in
/// responses.
struct FrameHeader {
  uint16_t version = wire::kVersion;
  FrameType type = FrameType::Ping;
  uint64_t request_id = 0;
  uint32_t k = 0;
  uint32_t m = 0;
  uint32_t frag_len = 0;         // bytes per payload fragment
  uint64_t erased_bitmap = 0;
  uint64_t present_bitmap = 0;
  uint16_t spec_len = 0;         // spec string (requests) / message (Error)
  uint16_t payload_count = 0;    // fragments following the spec
  uint32_t body_crc = 0;         // crc32 over spec bytes + payload bytes

  size_t body_size() const {
    return static_cast<size_t>(spec_len) +
           static_cast<size_t>(payload_count) * frag_len;
  }
};

/// Serialize `h` into exactly wire::kFrameHeaderSize bytes (header CRC
/// computed and appended here).
void encode_frame_header(const FrameHeader& h, uint8_t* out);

/// Parse + validate a frame header from `data` (allocation-free). Returns
/// Truncated when len < wire::kFrameHeaderSize; on Ok, `out` is fully
/// validated: limits hold, bitmaps are consistent with payload_count, and
/// body_size() <= wire::kMaxBody.
FrameError decode_frame_header(const uint8_t* data, size_t len, FrameHeader& out);

/// Scatter-gather view of one frame: spec and payload fragments as spans
/// into the caller's body buffer (which must outlive the view), plus the
/// bitmap id sets decoded into ascending vectors.
struct FrameView {
  FrameHeader header;
  std::string_view spec;
  std::vector<std::span<const uint8_t>> payloads;  // parallel to present_ids
  std::vector<uint32_t> present_ids;
  std::vector<uint32_t> erased_ids;
};

/// Bind `body` (exactly header.body_size() bytes) to a view, checking the
/// body CRC. The only allocations are the id/span vectors (<= kMaxFragments
/// entries — bounded by decode_frame_header, not by the peer).
FrameError bind_frame_body(const FrameHeader& header, const uint8_t* body,
                           size_t body_len, FrameView& out);

/// Build one contiguous wire image: header (CRCs filled in) + spec +
/// `payload_count` fragments gathered from `payloads[i]`, each
/// header.frag_len bytes. Throws std::invalid_argument when the header
/// would not survive its own decode (oversized spec, bitmap mismatch...).
std::vector<uint8_t> build_frame(FrameHeader header, std::string_view spec,
                                 const uint8_t* const* payloads);

// ---- UDP stripe packets ----------------------------------------------------

inline constexpr uint16_t kPacketFlagParity = 1;    // strip >= k (informative)
inline constexpr uint16_t kPacketFlagGroupEnd = 2;  // marker: group fully sent
inline constexpr uint16_t kPacketFlagAck = 4;       // receiver -> sender receipt

/// The fixed 44-byte per-datagram header. One strip of one stripe group per
/// packet; payload_len is this strip's bytes (uniform within a group).
struct PacketHeader {
  uint16_t version = wire::kVersion;
  uint16_t flags = 0;
  uint64_t group = 0;        // stripe sequence number
  uint32_t strip = 0;        // fragment id 0..k+m-1 (marker: strips sent)
  uint32_t k = 0;
  uint32_t m = 0;
  uint32_t payload_len = 0;
  uint16_t spec_len = 0;
  uint32_t body_crc = 0;     // crc32 over spec bytes + payload bytes
};

/// View of one datagram: spec and payload are spans into the caller's
/// receive buffer.
struct PacketView {
  PacketHeader header;
  std::string_view spec;
  std::span<const uint8_t> payload;
};

void encode_packet_header(const PacketHeader& h, uint8_t* out);

/// Parse + validate one whole datagram (header + spec + payload) —
/// allocation-free; the spans point into `data`. The datagram length must
/// equal kPacketHeaderSize + spec_len + payload_len exactly (UDP preserves
/// message boundaries, so anything else is damage).
FrameError decode_packet(const uint8_t* data, size_t len, PacketView& out);

/// Build one contiguous datagram image. Throws std::invalid_argument when
/// the result would exceed wire::kMaxDatagram or violate limits.
std::vector<uint8_t> build_packet(PacketHeader header, std::string_view spec,
                                  std::span<const uint8_t> payload);

}  // namespace xorec::net
