#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/datagram.hpp"
#include "net/frame.hpp"

namespace xorec::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::vector<uint8_t> error_frame(uint64_t request_id, std::string_view msg) {
  FrameHeader h;
  h.type = FrameType::Error;
  h.request_id = request_id;
  return build_frame(h, msg.substr(0, wire::kMaxSpecLen), nullptr);
}

uint64_t low_bits(uint32_t n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

}  // namespace

struct NetServer::Impl {
  // ---- per-connection state (event-loop thread only) -----------------------

  struct Deferred {
    FrameHeader header;
    std::vector<uint8_t> body;
  };

  /// One queued response: up to two gather segments. Small frames (errors,
  /// pongs) travel whole in `head`; codec responses keep the 56-byte header
  /// and the strip payload in the separate buffers they were produced in,
  /// and writev stitches them on the wire.
  struct Outbound {
    std::vector<uint8_t> head;
    std::vector<uint8_t> body;  // may be empty
    size_t size() const { return head.size() + body.size(); }
  };

  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    // reading-header -> reading-body state machine
    uint8_t header_buf[wire::kFrameHeaderSize];
    size_t header_got = 0;
    bool in_body = false;
    FrameHeader header;
    std::vector<uint8_t> body;
    size_t body_got = 0;
    // write side: queued response frames, front partially written
    std::deque<Outbound> outbox;
    size_t out_off = 0;  // bytes of the FRONT outbound already written
    size_t inflight = 0;       // submitted-but-unanswered requests
    bool closing = false;      // drain outbox, then close (framing lost)
    std::optional<Deferred> deferred;  // parsed request parked on backpressure
  };

  /// One in-flight TCP request: owns the request body (the codec reads the
  /// wire bytes in place) and the preallocated response BODY (the codec
  /// writes parity/rebuilt strips into the bytes that will hit the socket —
  /// the header is encoded separately and writev gathers the two).
  struct Req {
    uint64_t conn_id = 0;
    std::vector<uint8_t> body;
    std::vector<const uint8_t*> in_ptrs;
    std::vector<uint8_t*> out_ptrs;
    std::vector<uint32_t> avail_ids, erased_ids;
    FrameHeader rh;  // response header; body_crc finalized at completion
    std::vector<uint8_t> resp_body;
    std::optional<ServiceHandle> handle;
  };

  /// One in-flight UDP degraded read: the group arena is both the survivor
  /// source and the rebuild destination.
  struct UdpJob {
    std::shared_ptr<StripeGroup> g;
    std::vector<const uint8_t*> in_ptrs;
    std::vector<uint8_t*> out_ptrs;
    sockaddr_in to{};
    GroupAck ack;
    std::optional<ServiceHandle> handle;
  };

  struct Completion {
    std::future<void> fut;
    std::function<void(bool ok, const std::string& err)> done;
  };

  struct Finished {
    uint64_t conn_id = 0;
    std::vector<uint8_t> head;
    std::vector<uint8_t> body;  // empty for error/pong frames
    bool is_error = false;
  };

  // ---- members -------------------------------------------------------------

  CodecService& service;
  ServerOptions opt;
  int tcp_fd = -1, udp_fd = -1;
  int wake_r = -1, wake_w = -1;
  uint16_t bound_tcp_port = 0, bound_udp_port = 0;

  std::thread loop_thread, completion_thread;
  std::atomic<bool> running{false};
  bool started = false;

  // loop-thread-only state
  std::map<std::string, ServiceHandle> handles;
  uint64_t next_conn_id = 1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;      // fd -> conn
  std::unordered_map<uint64_t, Conn*> by_id;
  std::map<std::pair<uint32_t, uint16_t>, GroupAssembler> assemblers;  // per peer

  // loop -> completion thread: futures awaited strictly FIFO (head-of-line
  // waits are bounded by the queue-depth cap)
  std::mutex cmu;
  std::condition_variable ccv;
  std::deque<Completion> completions;
  bool cstop = false;

  // completion thread -> loop: finalized TCP responses
  std::mutex fmu;
  std::deque<Finished> finished;

  std::atomic<size_t> connections_accepted{0}, open_conns{0};
  std::atomic<size_t> requests{0}, responses{0}, errors{0}, backpressure_stalls{0};
  std::atomic<uint64_t> tcp_bytes_in{0}, tcp_bytes_out{0};
  std::atomic<size_t> writev_calls{0}, writev_segments{0};
  std::atomic<uint64_t> gather_bytes_saved{0};
  std::atomic<size_t> udp_groups{0}, udp_degraded{0}, udp_unrecoverable{0};

  Impl(CodecService& svc, ServerOptions o) : service(svc), opt(std::move(o)) {
    // Bind both sockets up front so ephemeral ports are known before start().
    tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd < 0) throw std::runtime_error("NetServer: socket() failed");
    const int one = 1;
    (void)::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    const UdpAddress resolved = udp_address(opt.host, opt.tcp_port);
    sa.sin_addr.s_addr = htonl(resolved.ip);
    sa.sin_port = htons(opt.tcp_port);
    if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(tcp_fd, 16) != 0) {
      ::close(tcp_fd);
      throw std::runtime_error("NetServer: TCP bind/listen failed");
    }
    set_nonblocking(tcp_fd);
    socklen_t len = sizeof(sa);
    ::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&sa), &len);
    bound_tcp_port = ntohs(sa.sin_port);

    udp_fd = open_udp_socket(opt.host, opt.udp_port);
    set_nonblocking(udp_fd);
    bound_udp_port = local_udp_port(udp_fd);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(tcp_fd);
      ::close(udp_fd);
      throw std::runtime_error("NetServer: pipe() failed");
    }
    wake_r = pipe_fds[0];
    wake_w = pipe_fds[1];
    set_nonblocking(wake_r);
    set_nonblocking(wake_w);
  }

  ~Impl() {
    stop();
    for (int fd : {tcp_fd, udp_fd, wake_r, wake_w})
      if (fd >= 0) ::close(fd);
  }

  // ---- lifecycle -----------------------------------------------------------

  void start() {
    if (started) return;
    started = true;
    {
      // stop() latches cstop so the completion thread drains and exits; a
      // restarted server needs the latch cleared or its new completion
      // thread exits immediately and responses are never delivered.
      std::lock_guard<std::mutex> lk(cmu);
      cstop = false;
    }
    running.store(true);
    loop_thread = std::thread([this] { loop_main(); });
    completion_thread = std::thread([this] { completion_main(); });
  }

  void stop() {
    if (!started) return;
    running.store(false);
    wake();
    if (loop_thread.joinable()) loop_thread.join();
    {
      std::lock_guard<std::mutex> lk(cmu);
      cstop = true;
    }
    ccv.notify_all();
    // The completion thread drains every submitted future before exiting,
    // so request/response buffers stay alive until their jobs finish.
    if (completion_thread.joinable()) completion_thread.join();
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    by_id.clear();
    open_conns.store(0);
    started = false;
  }

  void wake() {
    const uint8_t b = 1;
    (void)!::write(wake_w, &b, 1);  // EAGAIN = already pending, fine
  }

  // ---- completion thread ---------------------------------------------------

  void push_completion(std::future<void> fut,
                       std::function<void(bool, const std::string&)> done) {
    {
      std::lock_guard<std::mutex> lk(cmu);
      completions.push_back(Completion{std::move(fut), std::move(done)});
    }
    ccv.notify_one();
  }

  void completion_main() {
    for (;;) {
      Completion c;
      {
        std::unique_lock<std::mutex> lk(cmu);
        ccv.wait(lk, [this] { return cstop || !completions.empty(); });
        if (completions.empty()) return;  // cstop and drained
        c = std::move(completions.front());
        completions.pop_front();
      }
      bool ok = true;
      std::string err;
      try {
        if (c.fut.valid()) c.fut.get();
      } catch (const std::exception& e) {
        ok = false;
        err = e.what();
      }
      c.done(ok, err);
    }
  }

  void push_finished(uint64_t conn_id, std::vector<uint8_t> head, std::vector<uint8_t> body,
                     bool is_error) {
    {
      std::lock_guard<std::mutex> lk(fmu);
      finished.push_back(Finished{conn_id, std::move(head), std::move(body), is_error});
    }
    wake();
  }

  // ---- event loop ----------------------------------------------------------

  bool can_read(const Conn& c) const {
    return !c.closing && !c.deferred && c.inflight < opt.max_inflight_per_conn;
  }

  void loop_main() {
    std::vector<pollfd> fds;
    std::vector<int> conn_fds;
    while (running.load()) {
      fds.clear();
      conn_fds.clear();
      fds.push_back({wake_r, POLLIN, 0});
      fds.push_back({tcp_fd,
                     static_cast<short>(conns.size() < opt.max_connections ? POLLIN : 0),
                     0});
      fds.push_back({udp_fd, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short ev = 0;
        if (can_read(*conn)) ev |= POLLIN;
        if (!conn->outbox.empty()) ev |= POLLOUT;
        fds.push_back({fd, ev, 0});
        conn_fds.push_back(fd);
      }
      ::poll(fds.data(), fds.size(), 20);
      if (!running.load()) break;

      if (fds[0].revents & POLLIN) {  // drain wake bytes
        uint8_t buf[64];
        while (::read(wake_r, buf, sizeof(buf)) > 0) {
        }
      }
      drain_finished();
      if (fds[1].revents & POLLIN) handle_accept();
      if (fds[2].revents & POLLIN) handle_udp();
      for (size_t i = 0; i < conn_fds.size(); ++i) {
        const pollfd& p = fds[3 + i];
        auto it = conns.find(conn_fds[i]);
        if (it == conns.end()) continue;
        Conn* c = it->second.get();
        if (p.revents & (POLLERR | POLLHUP)) {
          close_conn(c->fd);
          continue;
        }
        if (p.revents & POLLOUT) {
          if (!handle_write(*c)) continue;  // conn closed
        }
        if (p.revents & POLLIN) {
          if (!handle_read(*c)) continue;
        }
      }
      retry_deferred();
      flush_closing();
    }
  }

  void drain_finished() {
    std::deque<Finished> batch;
    {
      std::lock_guard<std::mutex> lk(fmu);
      batch.swap(finished);
    }
    for (Finished& f : batch) {
      auto it = by_id.find(f.conn_id);
      if (it == by_id.end()) continue;  // connection already gone
      Conn& c = *it->second;
      if (c.inflight) --c.inflight;
      queue_segments(c, std::move(f.head), std::move(f.body), f.is_error);
    }
  }

  void retry_deferred() {
    for (auto& [fd, conn] : conns) {
      if (!conn->deferred) continue;
      Deferred d = std::move(*conn->deferred);
      conn->deferred.reset();
      dispatch(*conn, d.header, std::move(d.body), /*retry=*/true);
    }
  }

  void flush_closing() {
    std::vector<int> doomed;
    for (auto& [fd, conn] : conns)
      if (conn->closing && conn->outbox.empty() && conn->inflight == 0)
        doomed.push_back(fd);
    for (int fd : doomed) close_conn(fd);
  }

  void handle_accept() {
    for (;;) {
      const int fd = ::accept(tcp_fd, nullptr, nullptr);
      if (fd < 0) return;
      if (conns.size() >= opt.max_connections) {
        ::close(fd);
        return;
      }
      set_nonblocking(fd);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->id = next_conn_id++;
      conn->fd = fd;
      by_id[conn->id] = conn.get();
      conns.emplace(fd, std::move(conn));
      connections_accepted.fetch_add(1);
      open_conns.fetch_add(1);
    }
  }

  void close_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    by_id.erase(it->second->id);  // in-flight responses for it get dropped
    ::close(fd);
    conns.erase(it);
    open_conns.fetch_sub(1);
  }

  void queue_frame(Conn& c, std::vector<uint8_t> bytes, bool is_error) {
    queue_segments(c, std::move(bytes), {}, is_error);
  }

  void queue_segments(Conn& c, std::vector<uint8_t> head, std::vector<uint8_t> body,
                      bool is_error) {
    (is_error ? errors : responses).fetch_add(1);
    // Every body byte leaves the process from the buffer the codec wrote it
    // in — the copy a contiguous header+body frame would have paid.
    gather_bytes_saved.fetch_add(body.size());
    c.outbox.push_back(Outbound{std::move(head), std::move(body)});
  }

  // ---- TCP read / write ----------------------------------------------------

  /// Returns false when the connection was closed.
  bool handle_read(Conn& c) {
    while (can_read(c)) {
      if (!c.in_body) {
        const ssize_t n = ::read(c.fd, c.header_buf + c.header_got,
                                 wire::kFrameHeaderSize - c.header_got);
        if (n == 0) {
          close_conn(c.fd);
          return false;
        }
        if (n < 0) return true;  // EAGAIN
        c.header_got += static_cast<size_t>(n);
        tcp_bytes_in.fetch_add(static_cast<uint64_t>(n));
        if (c.header_got < wire::kFrameHeaderSize) continue;
        c.header_got = 0;
        const FrameError err =
            decode_frame_header(c.header_buf, wire::kFrameHeaderSize, c.header);
        if (err != FrameError::Ok) {
          // A bad header loses the framing: answer once, then close.
          queue_frame(c, error_frame(0, frame_error_name(err)), true);
          c.closing = true;
          return true;
        }
        if (c.header.body_size() == 0) {
          dispatch(c, c.header, {}, /*retry=*/false);
          continue;
        }
        // Allocation bounded by decode_frame_header: body_size <= kMaxBody.
        c.body.assign(c.header.body_size(), 0);
        c.body_got = 0;
        c.in_body = true;
      } else {
        const ssize_t n =
            ::read(c.fd, c.body.data() + c.body_got, c.body.size() - c.body_got);
        if (n == 0) {
          close_conn(c.fd);
          return false;
        }
        if (n < 0) return true;
        c.body_got += static_cast<size_t>(n);
        tcp_bytes_in.fetch_add(static_cast<uint64_t>(n));
        if (c.body_got < c.body.size()) continue;
        c.in_body = false;
        dispatch(c, c.header, std::move(c.body), /*retry=*/false);
      }
    }
    return true;
  }

  /// Gather every queued segment (bounded by kMaxIov) into one writev:
  /// header and strip payload leave from their own buffers, and several
  /// queued frames batch into a single syscall. `out_off` tracks how far
  /// into the FRONT outbound the wire has advanced; partial writes resume
  /// mid-segment on the next pass.
  static constexpr int kMaxIov = 16;

  bool handle_write(Conn& c) {
    while (!c.outbox.empty()) {
      iovec iov[kMaxIov];
      int n_iov = 0;
      size_t skip = c.out_off;
      for (auto it = c.outbox.begin(); it != c.outbox.end() && n_iov < kMaxIov; ++it) {
        for (std::vector<uint8_t>* seg : {&it->head, &it->body}) {
          if (seg->empty()) continue;
          if (skip >= seg->size()) {
            skip -= seg->size();
            continue;
          }
          if (n_iov == kMaxIov) break;
          iov[n_iov].iov_base = seg->data() + skip;
          iov[n_iov].iov_len = seg->size() - skip;
          skip = 0;
          ++n_iov;
        }
      }
      const ssize_t n = ::writev(c.fd, iov, n_iov);
      if (n < 0) return true;  // EAGAIN
      if (n == 0) {
        close_conn(c.fd);
        return false;
      }
      writev_calls.fetch_add(1);
      writev_segments.fetch_add(static_cast<size_t>(n_iov));
      tcp_bytes_out.fetch_add(static_cast<uint64_t>(n));
      c.out_off += static_cast<size_t>(n);
      while (!c.outbox.empty() && c.out_off >= c.outbox.front().size()) {
        c.out_off -= c.outbox.front().size();
        c.outbox.pop_front();
      }
    }
    return true;
  }

  // ---- request dispatch ----------------------------------------------------

  ServiceHandle* handle_for(const std::string& spec, std::string& err) {
    auto it = handles.find(spec);
    if (it == handles.end()) {
      try {
        it = handles.emplace(spec, service.acquire(spec)).first;
      } catch (const std::exception& e) {
        err = e.what();
        return nullptr;
      }
    }
    return &it->second;
  }

  void dispatch(Conn& c, const FrameHeader& h, std::vector<uint8_t> body, bool retry) {
    FrameView view;
    if (const FrameError err = bind_frame_body(h, body.data(), body.size(), view);
        err != FrameError::Ok) {
      queue_frame(c, error_frame(h.request_id, frame_error_name(err)), true);
      return;
    }
    if (h.type == FrameType::Ping) {
      requests.fetch_add(1);
      FrameHeader pong;
      pong.type = FrameType::Pong;
      pong.request_id = h.request_id;
      queue_frame(c, build_frame(pong, {}, nullptr), false);
      return;
    }
    if (h.type != FrameType::EncodeRequest && h.type != FrameType::ReconstructRequest) {
      queue_frame(c, error_frame(h.request_id, "unexpected frame type"), true);
      return;
    }

    std::string err;
    ServiceHandle* handle = handle_for(std::string(view.spec), err);
    if (!handle) {
      queue_frame(c, error_frame(h.request_id, "bad spec: " + err), true);
      return;
    }
    const Codec& codec = handle->codec();
    const uint32_t k = codec.data_fragments();
    const uint32_t m = codec.parity_fragments();
    if (h.frag_len == 0 || h.frag_len % codec.fragment_multiple() != 0) {
      queue_frame(c, error_frame(h.request_id, "frag_len violates codec fragment_multiple"),
                  true);
      return;
    }
    if ((h.present_bitmap | h.erased_bitmap) & ~low_bits(k + m)) {
      queue_frame(c, error_frame(h.request_id, "fragment id out of range for spec"), true);
      return;
    }

    // Global backpressure: the pool shard's queue is full — park the parsed
    // request (reads pause via can_read) and retry when the loop wakes.
    if (handle->session().pending() >= opt.max_queue_depth) {
      if (!retry) backpressure_stalls.fetch_add(1);
      c.deferred = Deferred{h, std::move(body)};
      return;
    }

    auto req = std::make_shared<Req>();
    req->conn_id = c.id;
    req->body = std::move(body);  // vector move keeps storage: spans stay valid
    req->handle = *handle;
    std::future<void> fut;

    if (h.type == FrameType::EncodeRequest) {
      if (h.payload_count != k || h.present_bitmap != low_bits(k)) {
        queue_frame(c, error_frame(h.request_id, "encode expects exactly the k data fragments"),
                    true);
        return;
      }
      req->rh.type = FrameType::Response;
      req->rh.request_id = h.request_id;
      req->rh.k = k;
      req->rh.m = m;
      req->rh.frag_len = h.frag_len;
      req->rh.present_bitmap = low_bits(m) << k;
      req->rh.payload_count = static_cast<uint16_t>(m);
      req->resp_body.resize(req->rh.body_size());
      for (const auto& p : view.payloads) req->in_ptrs.push_back(p.data());
      uint8_t* rb = req->resp_body.data();
      for (uint32_t i = 0; i < m; ++i)
        req->out_ptrs.push_back(rb + static_cast<size_t>(i) * h.frag_len);
      fut = handle->encode(req->in_ptrs.data(), req->out_ptrs.data(), h.frag_len);
    } else {
      if (view.erased_ids.empty()) {
        queue_frame(c, error_frame(h.request_id, "reconstruct request names no erased ids"),
                    true);
        return;
      }
      req->avail_ids = view.present_ids;
      req->erased_ids = view.erased_ids;
      req->rh.type = FrameType::Response;
      req->rh.request_id = h.request_id;
      req->rh.k = k;
      req->rh.m = m;
      req->rh.frag_len = h.frag_len;
      req->rh.present_bitmap = h.erased_bitmap;
      req->rh.payload_count = static_cast<uint16_t>(req->erased_ids.size());
      req->resp_body.resize(req->rh.body_size());
      for (const auto& p : view.payloads) req->in_ptrs.push_back(p.data());
      uint8_t* rb = req->resp_body.data();
      for (size_t i = 0; i < req->erased_ids.size(); ++i)
        req->out_ptrs.push_back(rb + i * h.frag_len);
      // Plan-less path: the plan lookup is memoized inside the job and an
      // unrecoverable pattern surfaces via the future as an Error frame.
      fut = handle->rebuild(req->avail_ids, req->in_ptrs.data(), req->erased_ids,
                            req->out_ptrs.data(), h.frag_len);
    }

    requests.fetch_add(1);
    ++c.inflight;
    const uint64_t bytes_in = wire::kFrameHeaderSize + req->body.size();
    push_completion(std::move(fut), [this, req, bytes_in](bool ok, const std::string& emsg) {
      if (ok) {
        // The body stays where the codec wrote it; only the 56-byte header
        // is materialized here. writev joins the two on the wire.
        req->rh.body_crc = crc32(req->resp_body.data(), req->rh.body_size());
        std::vector<uint8_t> head(wire::kFrameHeaderSize);
        encode_frame_header(req->rh, head.data());
        req->handle->note_net_request(bytes_in, head.size() + req->resp_body.size());
        push_finished(req->conn_id, std::move(head), std::move(req->resp_body), false);
      } else {
        push_finished(req->conn_id, error_frame(req->rh.request_id, emsg), {}, true);
      }
    });
  }

  // ---- UDP path ------------------------------------------------------------

  void handle_udp() {
    uint8_t buf[wire::kMaxDatagram];
    for (;;) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t n = ::recvfrom(udp_fd, buf, sizeof(buf), 0,
                                   reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n <= 0) return;  // EAGAIN
      const auto key = std::make_pair(ntohl(from.sin_addr.s_addr), ntohs(from.sin_port));
      auto done = assemblers[key].feed(buf, static_cast<size_t>(n));
      if (done) handle_group(std::move(*done), from);
    }
  }

  void send_ack(const sockaddr_in& to, const GroupAck& ack, uint32_t k, uint32_t m) {
    // Called from both threads; sendto on one fd is thread-safe.
    const std::vector<uint8_t> packet = build_ack_packet(ack, k, m);
    (void)::sendto(udp_fd, packet.data(), packet.size(), 0,
                   reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  }

  void handle_group(StripeGroup&& group, const sockaddr_in& from) {
    udp_groups.fetch_add(1);
    auto g = std::make_shared<StripeGroup>(std::move(group));
    GroupAck ack;
    ack.group = g->group;
    ack.strips_received = g->strips_received;

    std::string err;
    ServiceHandle* handle =
        g->spec.empty() ? nullptr : handle_for(g->spec, err);
    if (!handle) {
      ack.status = g->strips_received == 0 ? GroupAck::kUnrecoverable : GroupAck::kError;
      if (ack.status == GroupAck::kUnrecoverable) udp_unrecoverable.fetch_add(1);
      send_ack(from, ack, g->k, g->m);
      return;
    }
    const Codec& codec = handle->codec();
    if (g->frag_len == 0 || codec.data_fragments() != g->k ||
        codec.parity_fragments() != g->m || g->frag_len % codec.fragment_multiple() != 0) {
      ack.status = g->strips_received == 0 ? GroupAck::kUnrecoverable : GroupAck::kError;
      if (ack.status == GroupAck::kUnrecoverable) udp_unrecoverable.fetch_add(1);
      send_ack(from, ack, g->k, g->m);
      return;
    }

    const std::vector<uint32_t> missing = g->missing_data();
    if (missing.empty()) {
      ack.status = GroupAck::kComplete;
      send_ack(from, ack, g->k, g->m);
      return;
    }

    const std::vector<uint32_t> available = g->present_ids();
    std::shared_ptr<const ReconstructPlan> plan;
    try {
      plan = handle->plan_reconstruct(available, missing);
    } catch (const std::exception&) {
      ack.status = GroupAck::kUnrecoverable;
      udp_unrecoverable.fetch_add(1);
      send_ack(from, ack, g->k, g->m);
      return;
    }

    udp_degraded.fetch_add(1);
    auto job = std::make_shared<UdpJob>();
    job->g = g;
    job->to = from;
    job->ack = ack;
    job->ack.strips_reconstructed = static_cast<uint32_t>(missing.size());
    job->ack.status = GroupAck::kComplete;
    job->handle = *handle;
    for (uint32_t id : available) job->in_ptrs.push_back(g->slot(id));
    for (uint32_t id : missing) job->out_ptrs.push_back(g->slot(id));
    std::future<void> fut = handle->reconstruct(plan, job->in_ptrs.data(),
                                                job->out_ptrs.data(), g->frag_len);
    push_completion(std::move(fut), [this, job](bool ok, const std::string&) {
      GroupAck a = job->ack;
      if (!ok) {
        a.status = GroupAck::kError;
        a.strips_reconstructed = 0;
      } else {
        const StripeGroup& sg = *job->g;
        job->handle->note_net_request(
            static_cast<uint64_t>(sg.strips_received) * sg.frag_len,
            static_cast<uint64_t>(a.strips_reconstructed) * sg.frag_len);
      }
      send_ack(job->to, a, job->g->k, job->g->m);
    });
  }
};

// ---- public surface --------------------------------------------------------

NetServer::NetServer(CodecService& service, ServerOptions opt)
    : impl_(std::make_unique<Impl>(service, std::move(opt))) {}

NetServer::~NetServer() = default;

void NetServer::start() { impl_->start(); }
void NetServer::stop() { impl_->stop(); }
uint16_t NetServer::tcp_port() const { return impl_->bound_tcp_port; }
uint16_t NetServer::udp_port() const { return impl_->bound_udp_port; }

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted = impl_->connections_accepted.load();
  s.connections_open = impl_->open_conns.load();
  s.requests = impl_->requests.load();
  s.responses = impl_->responses.load();
  s.errors = impl_->errors.load();
  s.backpressure_stalls = impl_->backpressure_stalls.load();
  s.tcp_bytes_in = impl_->tcp_bytes_in.load();
  s.tcp_bytes_out = impl_->tcp_bytes_out.load();
  s.writev_calls = impl_->writev_calls.load();
  s.writev_segments = impl_->writev_segments.load();
  s.gather_bytes_saved = impl_->gather_bytes_saved.load();
  s.udp_groups = impl_->udp_groups.load();
  s.udp_degraded_reads = impl_->udp_degraded.load();
  s.udp_unrecoverable = impl_->udp_unrecoverable.load();
  return s;
}

}  // namespace xorec::net
