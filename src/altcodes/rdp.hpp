// RDP — Row-Diagonal Parity (Corbett et al., FAST'04): the second 2-parity
// comparator of §7.6. p-1 data disks (p prime), a row-parity disk and a
// diagonal-parity disk whose diagonals *include* the row-parity disk.
#pragma once

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// RDP with layout parameter `prime` (>= 3, prime): p-1 data disks.
XorCodeSpec rdp_spec(size_t prime);

}  // namespace xorec::altcodes
