// Locally repairable codes ("XORing Elephants" / Azure-LRC style): k data
// blocks split into l local groups, one XOR parity per group, plus g global
// RS (Cauchy) parities — as a plain XorCodeSpec bitmatrix, so the whole SLP
// optimizer / plan-cache / batch stack applies unchanged.
//
// Fragment layout: 0..k-1 data (contiguous groups, sizes differing by at
// most one), k..k+l-1 local parities (group 0 first), k+l..k+l+g-1 global
// parities. The draw: a single lost data block is rebuilt from its GROUP
// (group members + the group's local XOR parity — typically ~k/l reads)
// instead of k survivors; the globals cover multi-erasure patterns. LRC is
// not MDS: recoverability of a pattern is decided by the F2 solver
// (XorCodec defers to it), which is exactly the right authority here.
#pragma once

#include <cstddef>

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// Requires 1 <= l <= k and, when g > 0, k + g <= 255 (the global parities
/// come from the GF(2^8) Cauchy construction); l + g >= 1. w = 8 strips.
XorCodeSpec lrc_spec(size_t k, size_t l, size_t g);

/// The contiguous group of data block `b` under lrc_spec's grouping:
/// first k % l groups have ceil(k/l) members, the rest floor(k/l).
/// Returned as {first_member, member_count, local_parity_id}.
struct LrcGroup {
  size_t first = 0;
  size_t count = 0;
  size_t local_parity = 0;  // fragment id of the group's XOR parity
};
LrcGroup lrc_group_of(size_t k, size_t l, size_t data_block);

}  // namespace xorec::altcodes
