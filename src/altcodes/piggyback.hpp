// Piggybacked RS (Rashmi/Shah/Ramchandran's piggybacking framework): an RS
// stripe is split into `sub` substripes, each independently Cauchy-RS
// encoded, and parities 1..m-1 of the LAST substripe additionally carry XOR
// "piggybacks" of earlier-substripe data symbols — folded straight into the
// code bitmatrix, so the whole SLP optimizer / plan-cache / batch stack
// applies unchanged.
//
// Fragment layout: every fragment holds its sub substripes back to back,
// 8 strips each (w = 8·sub strips per block); substripe s of block b is
// strips b·w+8s .. b·w+8s+7. The code stays MDS over whole-block erasures
// (substripes 0..sub-2 decode as plain RS; the last substripe's piggybacks
// are then known and cancel), which the F2 solver finds on its own.
//
// The draw is repair bandwidth: a single lost data block is rebuilt by
// RS-decoding only the LAST substripe (k sub-symbol reads) and then peeling
// each earlier symbol off its piggybacked parity (1 parity sub-symbol + the
// piggyback set's other members) — piggyback_repair_reads() below, strictly
// fewer strip reads than the sub·k a plain RS repair touches once m >= 3.
// PiggybackCodec overrides XorCodec::recovery_rows to hand the don't-care
// F2 solver exactly that read set, so the compiled repair plan provably
// reads no more.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// Requires k >= 1, m >= 2, 2 <= sub <= m (each of a block's sub-1
/// piggybacked symbols needs its own carrier parity) and k + m <= 255 (the
/// base code is the GF(2^8) Cauchy construction). w = 8·sub strips.
XorCodeSpec piggyback_spec(size_t k, size_t m, size_t sub);

/// The piggyback layout arithmetic, shared by the spec builder, the codec's
/// reduced-read repair and the conformance tests.
struct PiggybackLayout {
  size_t k = 0, m = 0, sub = 0;

  PiggybackLayout(size_t k_, size_t m_, size_t sub_);

  size_t strips_per_block() const { return 8 * sub; }
  /// Data blocks are split into m-1 contiguous groups (sizes differing by
  /// at most one, like lrc); the group of data block b.
  size_t group_of(size_t b) const;
  /// Which parity (1..m-1) carries the piggyback of data block b's
  /// substripe-s symbol, s < sub-1: parity 1 + (group(b) + s) mod (m-1) —
  /// distinct per s because sub - 1 <= m - 1.
  size_t carrier_parity(size_t b, size_t s) const;
  /// All (block, substripe) symbols piggybacked onto parity p (1..m-1).
  std::vector<std::pair<size_t, size_t>> carried_by(size_t p) const;

  /// The strip ids (over the whole (k+m)-fragment stripe) the by-design
  /// repair of data block `b` reads: last substripe of every other data
  /// block and of parity 0, the last substripe of b's carrier parities, and
  /// the other members of each carrier's piggyback set. Sorted ascending.
  std::vector<uint32_t> repair_read_strips(size_t b) const;
};

/// Convenience: repair_read_strips of piggyback(k,m,sub) for `block`.
std::vector<uint32_t> piggyback_repair_reads(size_t k, size_t m, size_t sub, size_t block);

class PiggybackCodec : public XorCodec {
 public:
  PiggybackCodec(size_t k, size_t m, size_t sub, ec::CodecOptions opt = {});

  size_t substripes() const { return layout_.sub; }
  const PiggybackLayout& layout() const { return layout_; }

 protected:
  /// Single lost data block with the designed read set available: solve
  /// against exactly repair_read_strips(b) (everything else don't-care),
  /// so the compiled plan reads ~k + |piggyback sets| sub-symbols instead
  /// of sub·k. Any other pattern falls back to the full-read solve.
  std::optional<std::vector<bitmatrix::BitRow>> recovery_rows(
      const std::vector<uint32_t>& erased_strips,
      const std::vector<uint32_t>& avail_strips,
      const std::vector<uint32_t>& absent_strips) const override;

 private:
  PiggybackLayout layout_;
};

}  // namespace xorec::altcodes
