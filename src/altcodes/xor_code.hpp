// Generic XOR-code codec: any systematic parity bitmatrix over block strips
// (EVENODD, RDP, STAR, or user-defined codes) runs through the same SLP
// optimizer and blocked executor as RS — the library's generality claim —
// behind the unified xorec::Codec interface.
//
// A code over k data blocks + m parity blocks with w strips per block is a
// ((k+m)·w) x (k·w) bitmatrix whose top k·w rows are the identity. Block i's
// strips occupy indices i·w .. i·w+w-1. Decoding arbitrary block erasures is
// F2 Gaussian elimination over the surviving strips (f2_solve_erasures).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/codec.hpp"
#include "bitmatrix/bitmatrix.hpp"
#include "ec/bitmatrix_codec_core.hpp"

namespace xorec::altcodes {

struct XorCodeSpec {
  std::string name;
  size_t data_blocks = 0;      // k
  size_t parity_blocks = 0;    // m
  size_t strips_per_block = 0; // w
  bitmatrix::BitMatrix code;   // ((k+m)w) x (kw), systematic
  /// Folded into the plan-cache config fingerprint. A codec subclass that
  /// overrides recovery_rows (a different plan DERIVATION over the same
  /// matrix — piggyback's reduced-read repair) must set a nonzero salt, or
  /// its compiled programs would be cross-served with the plain solve's
  /// under one cache identity. 0 for plain XorCodec use.
  uint64_t plan_strategy_salt = 0;

  void validate() const;  // shape + systematic top; throws on violation
};

/// Shortened code: keep only the first k data blocks, treating the dropped
/// ones as all-zero (the standard way array codes run at non-native widths —
/// EVENODD/RDP/STAR layouts need a prime parameter, deployments rarely have
/// a prime number of disks). Erasure tolerance is preserved.
XorCodeSpec shorten_spec(const XorCodeSpec& full, size_t k);

class XorCodec : public Codec {
 public:
  explicit XorCodec(XorCodeSpec spec, ec::CodecOptions opt = {});

  const XorCodeSpec& spec() const { return spec_; }
  size_t data_blocks() const { return spec_.data_blocks; }
  size_t parity_blocks() const { return spec_.parity_blocks; }

  size_t data_fragments() const override { return spec_.data_blocks; }
  size_t parity_fragments() const override { return spec_.parity_blocks; }
  /// Fragment lengths must be positive multiples of this.
  size_t fragment_multiple() const override { return spec_.strips_per_block; }
  std::string name() const override { return spec_.name; }

  const slp::PipelineResult* encode_pipeline() const override {
    return &core_.encoder().pipeline;
  }

  /// Plan-cache counters (service-wide when on the shared cache).
  CacheStats cache_stats() const override { return core_.cache_stats(); }

  /// Cache identity + cached patterns, for warmup profiles.
  PlanFootprint plan_footprint() const override { return core_.footprint(); }
  size_t cached_program_count() const override { return core_.cache_size(); }
  ExecInfo exec_info() const override { return core_.exec_info(); }

 protected:
  void encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                   size_t frag_len) const override;
  /// Thin plan-and-execute over plan_reconstruct_impl (programs memoized).
  void reconstruct_impl(const std::vector<uint32_t>& available,
                        const uint8_t* const* available_frags,
                        const std::vector<uint32_t>& erased, uint8_t* const* out,
                        size_t frag_len) const override;
  std::shared_ptr<const ReconstructPlan> plan_reconstruct_impl(
      const std::vector<uint32_t>& available,
      const std::vector<uint32_t>& erased) const override;

  /// Recovery-row derivation hook: express each erased input strip (in the
  /// given order) as an XOR over `avail_strips` (columns in that order);
  /// nullopt when the survivors do not determine the erasures. The default
  /// is the full-read don't-care F2 solve over the code bitmatrix. Families
  /// with structured sub-fragment repair (piggyback) override this to
  /// restrict which survivor strips the compiled program reads, falling
  /// back here for patterns their structure does not cover. Results are
  /// memoized under the (erased, available) plan-cache key, so overrides
  /// must be deterministic functions of the pattern.
  virtual std::optional<std::vector<bitmatrix::BitRow>> recovery_rows(
      const std::vector<uint32_t>& erased_strips,
      const std::vector<uint32_t>& avail_strips,
      const std::vector<uint32_t>& absent_strips) const;

 private:
  std::shared_ptr<ec::CompiledProgram> recovery_program(
      const std::vector<uint32_t>& available_blocks,
      const std::vector<uint32_t>& erased_blocks) const;

  XorCodeSpec spec_;
  ec::BitmatrixCodecCore core_;
};

}  // namespace xorec::altcodes
