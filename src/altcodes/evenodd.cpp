#include "altcodes/evenodd.hpp"

#include <stdexcept>

namespace xorec::altcodes {

bool is_prime(size_t v) {
  if (v < 2) return false;
  for (size_t d = 2; d * d <= v; ++d)
    if (v % d == 0) return false;
  return true;
}

XorCodeSpec evenodd_spec(size_t prime) {
  if (prime < 3 || !is_prime(prime))
    throw std::invalid_argument("evenodd_spec: need a prime >= 3");
  const size_t p = prime;
  const size_t w = p - 1;  // strips per disk
  const size_t k = p;      // data disks

  XorCodeSpec spec;
  spec.name = "evenodd(p=" + std::to_string(p) + ")";
  spec.data_blocks = k;
  spec.parity_blocks = 2;
  spec.strips_per_block = w;
  spec.code = bitmatrix::BitMatrix((k + 2) * w, k * w);

  // a(i, j) = strip i of data disk j.
  const auto in = [&](size_t i, size_t j) { return j * w + i; };

  for (size_t s = 0; s < k * w; ++s) spec.code.set(s, s, true);

  // Horizontal parity P_i = XOR_j a(i, j).
  for (size_t i = 0; i < w; ++i) {
    const size_t row = k * w + i;
    for (size_t j = 0; j < p; ++j) spec.code.set(row, in(i, j), true);
  }

  // Adjuster S = XOR_{j=1..p-1} a(p-1-j, j) — the "missing" diagonal.
  bitmatrix::BitRow s_row(k * w);
  for (size_t j = 1; j < p; ++j) s_row.flip(in(p - 1 - j, j));

  // Diagonal parity Q_i = S ⊕ XOR_{j : (i-j) mod p != p-1} a((i-j) mod p, j).
  for (size_t i = 0; i < w; ++i) {
    const size_t row = (k + 1) * w + i;
    bitmatrix::BitRow q = s_row;
    for (size_t j = 0; j < p; ++j) {
      const size_t r = (i + p - j) % p;  // (i - j) mod p
      if (r != p - 1) q.flip(in(r, j));
    }
    spec.code.row(row) = q;
  }
  return spec;
}

}  // namespace xorec::altcodes
