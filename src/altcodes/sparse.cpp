#include "altcodes/sparse.hpp"

#include <map>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "bitmatrix/f2solve.hpp"
#include "gf/gfmat.hpp"

namespace xorec::altcodes {

namespace {

constexpr size_t kStrips = 8;       // w: strips per block
constexpr size_t kMaxAttempts = 64; // rejection-sampling budget per seed
constexpr size_t kCertMaxBlocks = 24;
constexpr size_t kCertMaxPatterns = 2048;

std::string family_name(size_t k, size_t m, size_t d, size_t seed) {
  return "sparse(" + std::to_string(k) + "," + std::to_string(m) + "," +
         std::to_string(d) + "," + std::to_string(seed) + ")";
}

/// C(n, r) capped at kCertMaxPatterns + 1 (enough to decide tractability).
size_t binomial_capped(size_t n, size_t r) {
  size_t v = 1;
  for (size_t i = 0; i < r; ++i) {
    v = v * (n - i) / (i + 1);
    if (v > kCertMaxPatterns) return kCertMaxPatterns + 1;
  }
  return v;
}

/// Every t-block erasure pattern decodable? (Monotone: passing t covers
/// every pattern of fewer erasures, which only has more survivors.)
bool all_t_erasures_decodable(const bitmatrix::BitMatrix& code, size_t k, size_t m,
                              size_t t) {
  const size_t n = k + m;
  std::vector<uint32_t> pick(t);
  for (size_t i = 0; i < t; ++i) pick[i] = static_cast<uint32_t>(i);
  while (true) {
    std::vector<uint32_t> erased_strips, avail_strips;
    size_t next = 0;
    for (uint32_t f = 0; f < n; ++f) {
      const bool erased = next < t && pick[next] == f;
      if (erased) ++next;
      for (size_t s = 0; s < kStrips; ++s) {
        const uint32_t strip = static_cast<uint32_t>(f * kStrips + s);
        if (erased && f < k) erased_strips.push_back(strip);
        if (!erased) avail_strips.push_back(strip);
      }
    }
    if (!erased_strips.empty() &&
        !bitmatrix::f2_solve_erasures(code, erased_strips, avail_strips))
      return false;
    // Next t-combination of [0, n).
    size_t i = t;
    while (i > 0 && pick[i - 1] == n - t + i - 1) --i;
    if (i == 0) return true;
    ++pick[i - 1];
    for (size_t j = i; j < t; ++j) pick[j] = pick[j - 1] + 1;
  }
}

/// The certified tolerance of one draw: largest t with every t-pattern
/// decodable, checked incrementally (0 when even single erasures fail).
size_t certify_tolerance(const bitmatrix::BitMatrix& code, size_t k, size_t m) {
  size_t t = 0;
  while (t < m && all_t_erasures_decodable(code, k, m, t + 1)) ++t;
  return t;
}

/// One seeded draw of the sparse parity coefficients (block-granular: a
/// parity touches a data block with probability d%, through a random
/// nonzero GF(2^8) coefficient). Degenerate draws are repaired in-stream:
/// a zero parity row encodes nothing and would fail validate(); an
/// uncovered data block would be unprotected by every parity.
gf::Matrix draw_code(std::mt19937& rng, size_t k, size_t m, size_t density_pct) {
  gf::Matrix parity(m, k);
  for (size_t p = 0; p < m; ++p)
    for (size_t j = 0; j < k; ++j)
      if (rng() % 100 < density_pct)
        parity.at(p, j) = static_cast<uint8_t>(1 + rng() % 255);
  for (size_t p = 0; p < m; ++p) {
    bool any = false;
    for (size_t j = 0; j < k && !any; ++j) any = parity.at(p, j) != 0;
    if (!any) parity.at(p, rng() % k) = static_cast<uint8_t>(1 + rng() % 255);
  }
  for (size_t j = 0; j < k; ++j) {
    bool any = false;
    for (size_t p = 0; p < m && !any; ++p) any = parity.at(p, j) != 0;
    if (!any) parity.at(rng() % m, j) = static_cast<uint8_t>(1 + rng() % 255);
  }
  gf::Matrix code(k + m, k);
  for (size_t j = 0; j < k; ++j) code.at(j, j) = 1;
  for (size_t p = 0; p < m; ++p)
    for (size_t j = 0; j < k; ++j) code.at(k + p, j) = parity.at(p, j);
  return code;
}

/// The rejection loop both entry points share: walk kMaxAttempts seeded
/// draws, certify each (small shapes), keep the best-certified one and
/// short-circuit on an MDS (t == m) winner. Returns the winning bitmatrix
/// and its certified tolerance (0 when the shape is uncertified). The
/// result is deterministic in (k, m, d, seed) and the certification is the
/// expensive part, so it is memoized process-wide — sparse_spec and
/// sparse_certified_tolerance on the same shape pay the loop once.
const std::pair<bitmatrix::BitMatrix, size_t>& best_draw(size_t k, size_t m,
                                                         size_t density_pct, size_t seed) {
  using Key = std::tuple<size_t, size_t, size_t, size_t>;
  static std::mutex mu;
  static std::map<Key, std::pair<bitmatrix::BitMatrix, size_t>> memo;
  {
    std::lock_guard lk(mu);
    const auto it = memo.find(Key{k, m, density_pct, seed});
    if (it != memo.end()) return it->second;
  }
  const std::string name = family_name(k, m, density_pct, seed);
  if (k == 0 || m == 0 || k > 128 || m > 128)
    throw std::invalid_argument(name + ": need 1 <= k, m <= 128");
  if (density_pct == 0 || density_pct > 100)
    throw std::invalid_argument(name + ": density is a percentage in 1..100");

  std::mt19937 rng(static_cast<uint32_t>(static_cast<uint64_t>(seed) ^
                                         (static_cast<uint64_t>(seed) >> 32)));
  const bool certify = sparse_mds_checked(k, m);
  bitmatrix::BitMatrix best;
  size_t best_t = 0;
  for (size_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    bitmatrix::BitMatrix code = bitmatrix::expand(draw_code(rng, k, m, density_pct));
    if (!certify) {
      std::lock_guard lk(mu);
      return memo.try_emplace(Key{k, m, density_pct, seed}, std::move(code), size_t{0})
          .first->second;
    }
    const size_t t = certify_tolerance(code, k, m);
    if (t > best_t || best.rows() == 0) {
      best = std::move(code);
      best_t = t;
    }
    if (best_t == m) break;  // MDS certificate: nothing left to improve
  }
  if (certify && best_t == 0)
    throw std::invalid_argument(
        name + ": no draw in " + std::to_string(kMaxAttempts) +
        " attempts repairs every single-block erasure — density too low for this "
        "shape (raise d or change the seed)");
  std::lock_guard lk(mu);
  return memo.try_emplace(Key{k, m, density_pct, seed}, std::move(best), best_t)
      .first->second;
}

}  // namespace

bool sparse_mds_checked(size_t k, size_t m) {
  if (k + m > kCertMaxBlocks) return false;
  size_t total = 0;
  for (size_t t = 1; t <= m; ++t) {
    total += binomial_capped(k + m, t);
    if (total > kCertMaxPatterns) return false;
  }
  return true;
}

size_t sparse_certified_tolerance(size_t k, size_t m, size_t density_pct, size_t seed) {
  return best_draw(k, m, density_pct, seed).second;
}

XorCodeSpec sparse_spec(size_t k, size_t m, size_t density_pct, size_t seed) {
  XorCodeSpec spec;
  spec.name = family_name(k, m, density_pct, seed);
  spec.data_blocks = k;
  spec.parity_blocks = m;
  spec.strips_per_block = kStrips;
  spec.code = best_draw(k, m, density_pct, seed).first;
  spec.validate();
  return spec;
}

}  // namespace xorec::altcodes
