// EVENODD (Blaum-Brady-Bruck-Menon '95): the classic 2-parity array code the
// paper's §7.6 low-parity comparison cites. p data disks (p prime), 2 parity
// disks, p-1 strips per disk; horizontal parities plus slope-1 diagonal
// parities with the S adjuster.
#pragma once

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// True iff v is prime (array codes need a prime layout parameter).
bool is_prime(size_t v);

/// EVENODD over `prime` data disks. Requires prime >= 3 and prime prime.
XorCodeSpec evenodd_spec(size_t prime);

}  // namespace xorec::altcodes
