// STAR (Huang-Xu '08): EVENODD extended with a third parity disk of
// slope -1 (anti-diagonal) parities; tolerates any three disk failures.
// The §7.6 three-parity comparator.
#pragma once

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// STAR over `prime` data disks (prime >= 3): 3 parity disks, p-1 strips.
XorCodeSpec star_spec(size_t prime);

}  // namespace xorec::altcodes
