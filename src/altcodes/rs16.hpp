// Wide-symbol Reed-Solomon: RS(n, p) over GF(2^16) expressed as a w = 16
// XOR code and executed through the same SLP pipeline as everything else.
//
// Demonstrates that the paper's method is field-width agnostic: the byte ->
// 8x8 companion expansion of §1 becomes a 16x16 expansion, fragments carry
// 16 strips, and decode falls out of the generic F2 erasure solver. The
// systematic Cauchy construction keeps the code provably MDS for any
// n + p <= 65535 (practically bounded by compile time of the SLP).
#pragma once

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// Systematic Cauchy RS over GF(2^16); fragment lengths must be multiples
/// of 16.
XorCodeSpec rs16_spec(size_t n, size_t p);

}  // namespace xorec::altcodes
