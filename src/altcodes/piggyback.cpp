#include "altcodes/piggyback.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bitmatrix/f2solve.hpp"
#include "gf/gfmat.hpp"

namespace xorec::altcodes {

namespace {

std::string family_name(size_t k, size_t m, size_t sub) {
  return "piggyback(" + std::to_string(k) + "," + std::to_string(m) + "," +
         std::to_string(sub) + ")";
}

/// Write the 8x8 companion bitmatrix of `coeff` at block (row_base, col_base).
void put_companion(bitmatrix::BitMatrix& code, size_t row_base, size_t col_base,
                   uint8_t coeff) {
  const bitmatrix::BitMatrix c = bitmatrix::companion(coeff);
  for (size_t r = 0; r < 8; ++r)
    for (size_t col = 0; col < 8; ++col)
      if (c.get(r, col)) code.set(row_base + r, col_base + col, true);
}

}  // namespace

PiggybackLayout::PiggybackLayout(size_t k_, size_t m_, size_t sub_)
    : k(k_), m(m_), sub(sub_) {
  const std::string name = family_name(k, m, sub);
  if (k == 0 || m < 2) throw std::invalid_argument(name + ": need k >= 1 and m >= 2");
  if (sub < 2 || sub > m)
    throw std::invalid_argument(name + ": need 2 <= sub <= m (each of a block's sub-1 "
                                       "piggybacked symbols needs its own carrier parity)");
  if (k + m > 255)
    throw std::invalid_argument(name + ": Cauchy base code needs k + m <= 255");
}

size_t PiggybackLayout::group_of(size_t b) const {
  // Contiguous groups over m-1 slots, first k % (m-1) groups one larger.
  const size_t groups = m - 1, q = k / groups, r = k % groups;
  if (b < r * (q + 1)) return b / (q + 1);
  return r + (b - r * (q + 1)) / q;
}

size_t PiggybackLayout::carrier_parity(size_t b, size_t s) const {
  return 1 + (group_of(b) + s) % (m - 1);
}

std::vector<std::pair<size_t, size_t>> PiggybackLayout::carried_by(size_t p) const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t b = 0; b < k; ++b)
    for (size_t s = 0; s + 1 < sub; ++s)
      if (carrier_parity(b, s) == p) out.emplace_back(b, s);
  return out;
}

std::vector<uint32_t> PiggybackLayout::repair_read_strips(size_t b) const {
  const size_t w = strips_per_block(), last = 8 * (sub - 1);
  std::vector<uint32_t> reads;
  const auto push_sub = [&](size_t frag, size_t sub_off) {
    for (size_t r = 0; r < 8; ++r)
      reads.push_back(static_cast<uint32_t>(frag * w + sub_off + r));
  };
  // Step 1 — RS-decode the last substripe: every other data block's last
  // substripe plus the clean parity 0 (k sub-symbols total).
  for (size_t j = 0; j < k; ++j)
    if (j != b) push_sub(j, last);
  push_sub(k, last);
  // Step 2 — peel each earlier symbol of b off its carrier: the carrier's
  // last-substripe sub-symbol plus the piggyback set's other members.
  for (size_t s = 0; s + 1 < sub; ++s) {
    const size_t p = carrier_parity(b, s);
    push_sub(k + p, last);
    for (const auto& [j, t] : carried_by(p))
      if (j != b) push_sub(j, 8 * t);
  }
  std::sort(reads.begin(), reads.end());
  reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
  return reads;
}

std::vector<uint32_t> piggyback_repair_reads(size_t k, size_t m, size_t sub, size_t block) {
  const PiggybackLayout layout(k, m, sub);
  if (block >= k)
    throw std::invalid_argument(family_name(k, m, sub) + ": repair block out of range");
  return layout.repair_read_strips(block);
}

XorCodeSpec piggyback_spec(size_t k, size_t m, size_t sub) {
  const PiggybackLayout layout(k, m, sub);
  const size_t w = layout.strips_per_block();

  XorCodeSpec spec;
  spec.name = family_name(k, m, sub);
  spec.data_blocks = k;
  spec.parity_blocks = m;
  spec.strips_per_block = w;
  spec.code = bitmatrix::BitMatrix((k + m) * w, k * w);
  for (size_t s = 0; s < k * w; ++s) spec.code.set(s, s, true);

  // Base code: the Cauchy RS(k,m) applied to each substripe independently.
  const gf::Matrix cauchy = gf::rs_cauchy_matrix(k, m);
  for (size_t p = 0; p < m; ++p)
    for (size_t s = 0; s < sub; ++s)
      for (size_t j = 0; j < k; ++j)
        put_companion(spec.code, (k + p) * w + 8 * s, j * w + 8 * s,
                      cauchy.at(k + p, j));

  // Piggybacks: parity p's LAST substripe additionally XORs in the earlier
  // substripe symbols it carries (coefficient 1 = the 8x8 identity).
  for (size_t p = 1; p < m; ++p)
    for (const auto& [j, t] : layout.carried_by(p))
      for (size_t r = 0; r < 8; ++r)
        spec.code.set((k + p) * w + 8 * (sub - 1) + r, j * w + 8 * t + r, true);

  spec.validate();
  return spec;
}

namespace {

/// PiggybackCodec derives reduced-read recovery programs the plain F2 solve
/// over the same bitmatrix would not produce; salt the cache identity so a
/// bare XorCodec(piggyback_spec(...)) on the shared plan cache never
/// cross-serves programs with it (in either direction both programs are
/// CORRECT, but the read-reduction guarantee would silently depend on who
/// compiled first).
XorCodeSpec with_reduced_read_salt(XorCodeSpec spec) {
  spec.plan_strategy_salt = 0x70696767795F7631ull;  // "piggy_v1"
  return spec;
}

}  // namespace

PiggybackCodec::PiggybackCodec(size_t k, size_t m, size_t sub, ec::CodecOptions opt)
    : XorCodec(with_reduced_read_salt(piggyback_spec(k, m, sub)), std::move(opt)),
      layout_(k, m, sub) {}

std::optional<std::vector<bitmatrix::BitRow>> PiggybackCodec::recovery_rows(
    const std::vector<uint32_t>& erased_strips, const std::vector<uint32_t>& avail_strips,
    const std::vector<uint32_t>& absent_strips) const {
  const size_t w = layout_.strips_per_block(), k = layout_.k;
  // The structured path covers the common repair: ONE lost data block, with
  // the designed read set among the survivors.
  const bool one_data_block = erased_strips.size() == w && erased_strips.front() % w == 0 &&
                              erased_strips.front() / w < k &&
                              erased_strips.back() == erased_strips.front() + w - 1;
  if (one_data_block) {
    const size_t b = erased_strips.front() / w;
    const std::vector<uint32_t> reads = layout_.repair_read_strips(b);
    if (std::includes(avail_strips.begin(), avail_strips.end(), reads.begin(),
                      reads.end())) {
      // Everything outside the read set is a don't-care: data strips join
      // the solve as free unknowns, and only the read strips are offered as
      // outputs — the solution provably reads nothing else.
      std::vector<uint32_t> absent;
      for (uint32_t strip = 0; strip < k * w; ++strip)
        if (strip / w != b &&
            !std::binary_search(reads.begin(), reads.end(), strip))
          absent.push_back(strip);
      if (auto rows = bitmatrix::f2_solve_erasures(spec().code, erased_strips, reads,
                                                   absent)) {
        // Re-express over the full avail_strips column space (the compiled
        // program's input numbering), reads scattered to their positions.
        std::vector<size_t> pos(reads.size());
        for (size_t i = 0; i < reads.size(); ++i) {
          const auto it = std::lower_bound(avail_strips.begin(), avail_strips.end(),
                                           reads[i]);
          pos[i] = static_cast<size_t>(it - avail_strips.begin());
        }
        std::vector<bitmatrix::BitRow> full;
        full.reserve(rows->size());
        for (const bitmatrix::BitRow& row : *rows) {
          bitmatrix::BitRow wide(avail_strips.size());
          for (uint32_t i : row.ones()) wide.set(pos[i], true);
          full.push_back(std::move(wide));
        }
        return full;
      }
    }
  }
  return XorCodec::recovery_rows(erased_strips, avail_strips, absent_strips);
}

}  // namespace xorec::altcodes
