#include "altcodes/rdp.hpp"

#include <stdexcept>

#include "altcodes/evenodd.hpp"  // is_prime

namespace xorec::altcodes {

XorCodeSpec rdp_spec(size_t prime) {
  if (prime < 3 || !is_prime(prime))
    throw std::invalid_argument("rdp_spec: need a prime >= 3");
  const size_t p = prime;
  const size_t w = p - 1;
  const size_t k = p - 1;  // data disks

  XorCodeSpec spec;
  spec.name = "rdp(p=" + std::to_string(p) + ")";
  spec.data_blocks = k;
  spec.parity_blocks = 2;
  spec.strips_per_block = w;
  spec.code = bitmatrix::BitMatrix((k + 2) * w, k * w);

  const auto in = [&](size_t i, size_t j) { return j * w + i; };

  for (size_t s = 0; s < k * w; ++s) spec.code.set(s, s, true);

  // Row parity disk (block k): P_i = XOR_{j<k} a(i, j).
  std::vector<bitmatrix::BitRow> p_rows(w, bitmatrix::BitRow(k * w));
  for (size_t i = 0; i < w; ++i) {
    for (size_t j = 0; j < k; ++j) p_rows[i].flip(in(i, j));
    spec.code.row(k * w + i) = p_rows[i];
  }

  // Diagonal parity disk (block k+1): diagonal d collects cells (r, j) with
  // (r + j) mod p == d over data disks j < k and the row-parity disk at
  // column index p-1 (whose cell (r, p-1) is P_r); diagonal p-1 is unstored.
  for (size_t d = 0; d < w; ++d) {
    bitmatrix::BitRow row(k * w);
    for (size_t j = 0; j < k; ++j) {
      const size_t r = (d + p - j) % p;
      if (r <= p - 2) row.flip(in(r, j));
    }
    {
      const size_t r = (d + p - (p - 1)) % p;  // row-parity column j = p-1
      if (r <= p - 2) row ^= p_rows[r];
    }
    spec.code.row((k + 1) * w + d) = row;
  }
  return spec;
}

}  // namespace xorec::altcodes
