#include "altcodes/rs16.hpp"

#include <stdexcept>

#include "gf/gf65536.hpp"

namespace xorec::altcodes {

namespace {

/// 16x16 companion bitmatrix of a GF(2^16) coefficient written into `code`
/// at block position (row_block, col_block): column c holds the bits of
/// coeff * alpha^c, so M * bits(y) == bits(coeff * y).
void put_companion16(bitmatrix::BitMatrix& code, size_t row_block, size_t col_block,
                     uint16_t coeff) {
  for (int c = 0; c < 16; ++c) {
    const uint16_t col = gf16::mul(coeff, static_cast<uint16_t>(1u << c));
    for (int r = 0; r < 16; ++r) {
      if ((col >> r) & 1u) code.set(row_block * 16 + r, col_block * 16 + c, true);
    }
  }
}

}  // namespace

XorCodeSpec rs16_spec(size_t n, size_t p) {
  if (n == 0 || p == 0 || n + p > 65535)
    throw std::invalid_argument("rs16_spec: bad (n, p)");

  XorCodeSpec spec;
  spec.name = "rs16(" + std::to_string(n) + "," + std::to_string(p) + ")";
  spec.data_blocks = n;
  spec.parity_blocks = p;
  spec.strips_per_block = 16;
  spec.code = bitmatrix::BitMatrix((n + p) * 16, n * 16);

  for (size_t s = 0; s < n * 16; ++s) spec.code.set(s, s, true);

  // Cauchy block (i, j): 1 / (x_i + y_j) with x_i = alpha^(n+i), y_j = alpha^j.
  // Distinct exponents below 65535 keep every x_i distinct from every y_j.
  for (size_t i = 0; i < p; ++i) {
    const uint16_t xi = gf16::alpha_pow(static_cast<unsigned>(n + i));
    for (size_t j = 0; j < n; ++j) {
      const uint16_t yj = gf16::alpha_pow(static_cast<unsigned>(j));
      put_companion16(spec.code, n + i, j, gf16::inv(static_cast<uint16_t>(xi ^ yj)));
    }
  }
  return spec;
}

}  // namespace xorec::altcodes
