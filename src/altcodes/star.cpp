#include "altcodes/star.hpp"

#include <stdexcept>

#include "altcodes/evenodd.hpp"  // evenodd_spec, is_prime

namespace xorec::altcodes {

XorCodeSpec star_spec(size_t prime) {
  if (prime < 3 || !is_prime(prime))
    throw std::invalid_argument("star_spec: need a prime >= 3");
  const size_t p = prime;
  const size_t w = p - 1;
  const size_t k = p;

  // Start from EVENODD (identity + P + Q) and append the anti-diagonal disk.
  XorCodeSpec eo = evenodd_spec(p);
  XorCodeSpec spec;
  spec.name = "star(p=" + std::to_string(p) + ")";
  spec.data_blocks = k;
  spec.parity_blocks = 3;
  spec.strips_per_block = w;
  spec.code = bitmatrix::BitMatrix((k + 3) * w, k * w);
  for (size_t r = 0; r < (k + 2) * w; ++r) spec.code.row(r) = eo.code.row(r);

  const auto in = [&](size_t i, size_t j) { return j * w + i; };

  // Anti-diagonal adjuster S2: cells with (r - j) mod p == p-1, i.e. r = j-1.
  bitmatrix::BitRow s2(k * w);
  for (size_t j = 1; j < p; ++j) s2.flip(in(j - 1, j));

  // R_i = S2 ⊕ XOR_{j : (i+j) mod p != p-1} a((i+j) mod p, j).
  for (size_t i = 0; i < w; ++i) {
    bitmatrix::BitRow row = s2;
    for (size_t j = 0; j < p; ++j) {
      const size_t r = (i + j) % p;
      if (r != p - 1) row.flip(in(r, j));
    }
    spec.code.row((k + 2) * w + i) = row;
  }
  return spec;
}

}  // namespace xorec::altcodes
