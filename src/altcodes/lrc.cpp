#include "altcodes/lrc.hpp"

#include <stdexcept>
#include <string>

#include "gf/gfmat.hpp"

namespace xorec::altcodes {

namespace {

LrcGroup lrcgroup_unchecked(size_t k, size_t l, size_t b) {
  const size_t q = k / l, r = k % l;
  LrcGroup g;
  size_t group;
  // Groups 0..r-1 have q+1 members, the rest q.
  if (b < r * (q + 1)) {
    group = b / (q + 1);
    g.first = group * (q + 1);
    g.count = q + 1;
  } else {
    group = r + (b - r * (q + 1)) / q;
    g.first = r * (q + 1) + (group - r) * q;
    g.count = q;
  }
  g.local_parity = k + group;
  return g;
}

}  // namespace

LrcGroup lrc_group_of(size_t k, size_t l, size_t data_block) {
  if (l == 0 || l > k || data_block >= k)
    throw std::invalid_argument("lrc_group_of: need 1 <= l <= k and data_block < k");
  return lrcgroup_unchecked(k, l, data_block);
}

XorCodeSpec lrc_spec(size_t k, size_t l, size_t g) {
  const std::string name = "lrc(" + std::to_string(k) + "," + std::to_string(l) + "," +
                           std::to_string(g) + ")";
  if (k == 0 || l == 0 || l > k)
    throw std::invalid_argument(name + ": need 1 <= l <= k");
  if (g > 0 && k + g > 255)
    throw std::invalid_argument(name + ": Cauchy globals need k + g <= 255");

  // The code as a GF(2^8) matrix: identity, then one all-ones row per local
  // group, then the Cauchy parity rows over all k data blocks. expand()
  // turns coefficient 1 into the 8x8 identity companion, so the local
  // parities are pure XORs of their group members.
  gf::Matrix code(k + l + g, k);
  for (size_t i = 0; i < k; ++i) code.at(i, i) = 1;
  for (size_t b = 0; b < k; ++b) code.at(lrcgroup_unchecked(k, l, b).local_parity, b) = 1;
  if (g > 0) {
    const gf::Matrix cauchy = gf::rs_cauchy_matrix(k, g);
    for (size_t i = 0; i < g; ++i)
      for (size_t j = 0; j < k; ++j) code.at(k + l + i, j) = cauchy.at(k + i, j);
  }

  XorCodeSpec spec;
  spec.name = name;
  spec.data_blocks = k;
  spec.parity_blocks = l + g;
  spec.strips_per_block = 8;
  spec.code = bitmatrix::expand(code);
  spec.validate();
  return spec;
}

}  // namespace xorec::altcodes
