#include "altcodes/xor_code.hpp"

#include <stdexcept>

#include "bitmatrix/f2solve.hpp"

namespace xorec::altcodes {

using bitmatrix::BitMatrix;
using bitmatrix::BitRow;

void XorCodeSpec::validate() const {
  const size_t k = data_blocks, m = parity_blocks, w = strips_per_block;
  if (k == 0 || m == 0 || w == 0) throw std::invalid_argument(name + ": empty dimensions");
  if (code.rows() != (k + m) * w || code.cols() != k * w)
    throw std::invalid_argument(name + ": code shape mismatch");
  for (size_t r = 0; r < k * w; ++r)
    if (code.row(r).popcount() != 1 || !code.get(r, r))
      throw std::invalid_argument(name + ": top rows are not systematic");
  for (size_t r = k * w; r < (k + m) * w; ++r)
    if (!code.row(r).any()) throw std::invalid_argument(name + ": zero parity row");
}

XorCodeSpec shorten_spec(const XorCodeSpec& full, size_t k) {
  full.validate();
  if (k == 0 || k > full.data_blocks)
    throw std::invalid_argument(full.name + ": cannot shorten to " + std::to_string(k) +
                                " of " + std::to_string(full.data_blocks) + " data blocks");
  if (k == full.data_blocks) return full;

  const size_t w = full.strips_per_block, m = full.parity_blocks;
  XorCodeSpec s;
  s.name = full.name + "[k=" + std::to_string(k) + "]";
  s.data_blocks = k;
  s.parity_blocks = m;
  s.strips_per_block = w;
  s.code = BitMatrix((k + m) * w, k * w);
  for (size_t r = 0; r < k * w; ++r) s.code.set(r, r, true);
  // Parity rows keep only the columns of the surviving data blocks; the
  // dropped blocks are identically zero, so their terms vanish.
  for (size_t r = 0; r < m * w; ++r) {
    const BitRow& src = full.code.row(full.data_blocks * w + r);
    for (size_t c = 0; c < k * w; ++c)
      if (src.get(c)) s.code.set(k * w + r, c, true);
  }
  s.validate();
  return s;
}

namespace {

XorCodeSpec checked(XorCodeSpec spec) {
  spec.validate();
  return spec;
}

/// The bottom m·w rows: the encoding bitmatrix.
BitMatrix parity_of(const XorCodeSpec& spec) {
  const size_t kw = spec.data_blocks * spec.strips_per_block;
  const size_t mw = spec.parity_blocks * spec.strips_per_block;
  BitMatrix parity(mw, kw);
  for (size_t r = 0; r < mw; ++r) parity.row(r) = spec.code.row(kw + r);
  return parity;
}

}  // namespace

XorCodec::XorCodec(XorCodeSpec spec, ec::CodecOptions opt)
    : spec_(checked(std::move(spec))),
      core_(spec_.data_blocks, spec_.parity_blocks, spec_.strips_per_block,
            parity_of(spec_), std::move(opt), spec_.name, spec_.plan_strategy_salt) {}

void XorCodec::encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                           size_t frag_len) const {
  core_.encode(data, parity, frag_len);
}

std::shared_ptr<ec::CompiledProgram> XorCodec::recovery_program(
    const std::vector<uint32_t>& available_blocks,
    const std::vector<uint32_t>& erased_data_blocks) const {
  return core_.cached(
      ec::BitmatrixCodecCore::decode_key(erased_data_blocks, available_blocks),
      [&]() -> std::shared_ptr<ec::CompiledProgram> {
        const size_t w = spec_.strips_per_block;
        std::vector<uint32_t> erased_strips, avail_strips, absent_strips;
        for (uint32_t b : erased_data_blocks)
          for (size_t s = 0; s < w; ++s)
            erased_strips.push_back(static_cast<uint32_t>(b * w + s));
        for (uint32_t b : available_blocks)
          for (size_t s = 0; s < w; ++s)
            avail_strips.push_back(static_cast<uint32_t>(b * w + s));
        // Data blocks neither available nor erased are don't-care unknowns:
        // a locality code (LRC) repairs a block from its group while the
        // rest of the stripe stays unread.
        std::vector<bool> known(spec_.data_blocks, false);
        for (uint32_t b : erased_data_blocks) known[b] = true;
        for (uint32_t b : available_blocks)
          if (b < spec_.data_blocks) known[b] = true;
        for (uint32_t b = 0; b < spec_.data_blocks; ++b)
          if (!known[b])
            for (size_t s = 0; s < w; ++s)
              absent_strips.push_back(static_cast<uint32_t>(b * w + s));

        auto rows = recovery_rows(erased_strips, avail_strips, absent_strips);
        if (!rows)
          throw std::invalid_argument(spec_.name + ": erasure pattern exceeds code tolerance");
        BitMatrix recovery(rows->size(), avail_strips.size());
        for (size_t r = 0; r < rows->size(); ++r) recovery.row(r) = (*rows)[r];
        return core_.compile(recovery, "dec");
      });
}

std::optional<std::vector<BitRow>> XorCodec::recovery_rows(
    const std::vector<uint32_t>& erased_strips, const std::vector<uint32_t>& avail_strips,
    const std::vector<uint32_t>& absent_strips) const {
  return bitmatrix::f2_solve_erasures(spec_.code, erased_strips, avail_strips,
                                      absent_strips);
}

std::shared_ptr<const ReconstructPlan> XorCodec::plan_reconstruct_impl(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const {
  return core_.make_plan(
      available, erased,
      [&](const std::vector<uint32_t>& avail_sorted,
          const std::vector<uint32_t>& erased_data) -> ec::BitmatrixCodecCore::RecoveryPlan {
        return {recovery_program(avail_sorted, erased_data), avail_sorted};
      },
      [&](const std::vector<uint32_t>& erased_parity) {
        return core_.cached(
            ec::BitmatrixCodecCore::parity_key(erased_parity),
            [&]() -> std::shared_ptr<ec::CompiledProgram> {
              const size_t w = spec_.strips_per_block, k = spec_.data_blocks;
              BitMatrix rows(erased_parity.size() * w, k * w);
              for (size_t i = 0; i < erased_parity.size(); ++i)
                for (size_t s = 0; s < w; ++s)
                  rows.row(i * w + s) = spec_.code.row(erased_parity[i] * w + s);
              return core_.compile(rows, "parity-subset");
            });
      });
}

void XorCodec::reconstruct_impl(const std::vector<uint32_t>& available,
                                const uint8_t* const* available_frags,
                                const std::vector<uint32_t>& erased, uint8_t* const* out,
                                size_t frag_len) const {
  plan_reconstruct_impl(available, erased)->execute(available_frags, out, frag_len);
}

}  // namespace xorec::altcodes
