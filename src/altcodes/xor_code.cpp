#include "altcodes/xor_code.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitmatrix/f2solve.hpp"

namespace xorec::altcodes {

using bitmatrix::BitMatrix;
using bitmatrix::BitRow;

void XorCodeSpec::validate() const {
  const size_t k = data_blocks, m = parity_blocks, w = strips_per_block;
  if (k == 0 || m == 0 || w == 0) throw std::invalid_argument(name + ": empty dimensions");
  if (code.rows() != (k + m) * w || code.cols() != k * w)
    throw std::invalid_argument(name + ": code shape mismatch");
  for (size_t r = 0; r < k * w; ++r)
    if (code.row(r).popcount() != 1 || !code.get(r, r))
      throw std::invalid_argument(name + ": top rows are not systematic");
  for (size_t r = k * w; r < (k + m) * w; ++r)
    if (!code.row(r).any()) throw std::invalid_argument(name + ": zero parity row");
}

namespace {

template <typename Byte>
std::vector<Byte*> strips_of(Byte* const* frags, size_t count, size_t w, size_t frag_len) {
  const size_t strip_len = frag_len / w;
  std::vector<Byte*> out(count * w);
  for (size_t f = 0; f < count; ++f)
    for (size_t s = 0; s < w; ++s) out[f * w + s] = frags[f] + s * strip_len;
  return out;
}

}  // namespace

XorCodec::XorCodec(XorCodeSpec spec, ec::CodecOptions opt)
    : spec_(std::move(spec)), opt_(std::move(opt)) {
  spec_.validate();
  const size_t kw = spec_.data_blocks * spec_.strips_per_block;
  const size_t mw = spec_.parity_blocks * spec_.strips_per_block;
  BitMatrix parity(mw, kw);
  for (size_t r = 0; r < mw; ++r) parity.row(r) = spec_.code.row(kw + r);
  enc_ = std::make_shared<ec::CompiledProgram>(
      slp::optimize(parity, opt_.pipeline, spec_.name + "-enc"), opt_.exec);
  cache_ = std::make_unique<ec::detail::DecodeCache>(opt_.decode_cache_capacity);
}

void XorCodec::encode(const uint8_t* const* data, uint8_t* const* parity,
                      size_t frag_len) const {
  const size_t w = spec_.strips_per_block;
  if (frag_len == 0 || frag_len % w != 0)
    throw std::invalid_argument(spec_.name + ": frag_len must be a multiple of " +
                                std::to_string(w));
  const auto in = strips_of<const uint8_t>(data, spec_.data_blocks, w, frag_len);
  const auto out = strips_of<uint8_t>(parity, spec_.parity_blocks, w, frag_len);
  enc_->exec.run(in.data(), out.data(), frag_len / w);
}

std::shared_ptr<ec::CompiledProgram> XorCodec::recovery_program(
    const std::vector<uint32_t>& available_blocks,
    const std::vector<uint32_t>& erased_data_blocks) const {
  std::vector<uint32_t> key = erased_data_blocks;
  key.push_back(UINT32_MAX);
  key.insert(key.end(), available_blocks.begin(), available_blocks.end());
  return cache_->get_or_build(key, [&]() -> std::shared_ptr<ec::CompiledProgram> {
    const size_t w = spec_.strips_per_block;
    std::vector<uint32_t> erased_strips, avail_strips;
    for (uint32_t b : erased_data_blocks)
      for (size_t s = 0; s < w; ++s) erased_strips.push_back(static_cast<uint32_t>(b * w + s));
    for (uint32_t b : available_blocks)
      for (size_t s = 0; s < w; ++s) avail_strips.push_back(static_cast<uint32_t>(b * w + s));

    auto rows = bitmatrix::f2_solve_erasures(spec_.code, erased_strips, avail_strips);
    if (!rows)
      throw std::invalid_argument(spec_.name + ": erasure pattern exceeds code tolerance");
    BitMatrix recovery(rows->size(), avail_strips.size());
    for (size_t r = 0; r < rows->size(); ++r) recovery.row(r) = (*rows)[r];
    return std::make_shared<ec::CompiledProgram>(
        slp::optimize(recovery, opt_.pipeline, spec_.name + "-dec"), opt_.exec);
  });
}

void XorCodec::reconstruct(const std::vector<uint32_t>& available,
                           const uint8_t* const* available_frags,
                           const std::vector<uint32_t>& erased, uint8_t* const* out,
                           size_t frag_len) const {
  const size_t w = spec_.strips_per_block;
  const size_t k = spec_.data_blocks, m = spec_.parity_blocks;
  if (frag_len == 0 || frag_len % w != 0)
    throw std::invalid_argument(spec_.name + ": frag_len must be a multiple of " +
                                std::to_string(w));
  const size_t strip_len = frag_len / w;

  std::vector<const uint8_t*> frag_by_id(k + m, nullptr);
  for (size_t i = 0; i < available.size(); ++i) {
    if (available[i] >= k + m) throw std::out_of_range(spec_.name + ": available id");
    frag_by_id[available[i]] = available_frags[i];
  }
  std::vector<uint32_t> erased_data, erased_parity;
  std::vector<uint8_t*> out_data, out_parity;
  for (size_t i = 0; i < erased.size(); ++i) {
    if (erased[i] >= k + m) throw std::out_of_range(spec_.name + ": erased id");
    if (erased[i] < k) {
      erased_data.push_back(erased[i]);
      out_data.push_back(out[i]);
    } else {
      erased_parity.push_back(erased[i]);
      out_parity.push_back(out[i]);
    }
  }

  std::vector<uint32_t> avail_sorted = available;
  std::sort(avail_sorted.begin(), avail_sorted.end());

  if (!erased_data.empty()) {
    // Canonical order for the cache key and output mapping.
    std::vector<size_t> perm(erased_data.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(),
              [&](size_t a, size_t b) { return erased_data[a] < erased_data[b]; });
    std::vector<uint32_t> erased_sorted(perm.size());
    std::vector<uint8_t*> out_sorted(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      erased_sorted[i] = erased_data[perm[i]];
      out_sorted[i] = out_data[perm[i]];
    }
    const auto prog = recovery_program(avail_sorted, erased_sorted);

    std::vector<const uint8_t*> in_frags(avail_sorted.size());
    for (size_t i = 0; i < avail_sorted.size(); ++i) in_frags[i] = frag_by_id[avail_sorted[i]];
    const auto in = strips_of<const uint8_t>(in_frags.data(), in_frags.size(), w, frag_len);
    const auto outs = strips_of<uint8_t>(out_sorted.data(), out_sorted.size(), w, frag_len);
    prog->exec.run(in.data(), outs.data(), strip_len);

    for (size_t i = 0; i < erased_sorted.size(); ++i)
      frag_by_id[erased_sorted[i]] = out_sorted[i];
  }

  if (!erased_parity.empty()) {
    std::vector<uint32_t> key = erased_parity;
    key.push_back(UINT32_MAX);
    key.push_back(UINT32_MAX);
    const auto prog = cache_->get_or_build(key, [&]() -> std::shared_ptr<ec::CompiledProgram> {
      BitMatrix rows(erased_parity.size() * w, k * w);
      for (size_t i = 0; i < erased_parity.size(); ++i)
        for (size_t s = 0; s < w; ++s)
          rows.row(i * w + s) = spec_.code.row(erased_parity[i] * w + s);
      return std::make_shared<ec::CompiledProgram>(
          slp::optimize(rows, opt_.pipeline, spec_.name + "-parity"), opt_.exec);
    });
    std::vector<const uint8_t*> data_frags(k);
    for (size_t d = 0; d < k; ++d) {
      if (frag_by_id[d] == nullptr)
        throw std::logic_error(spec_.name + ": data fragment unavailable for parity repair");
      data_frags[d] = frag_by_id[d];
    }
    const auto in = strips_of<const uint8_t>(data_frags.data(), k, w, frag_len);
    const auto outs = strips_of<uint8_t>(out_parity.data(), out_parity.size(), w, frag_len);
    prog->exec.run(in.data(), outs.data(), strip_len);
  }
}

}  // namespace xorec::altcodes
