// Sparse random codes (Founsure/LT-flavored): each parity block touches a
// random d% of the data blocks, each touched block through a random nonzero
// GF(2^8) coefficient, expanded to a sparse parity bitmatrix — so parity
// rows carry ~d%·k block terms instead of all k, fewer XORs before the
// optimizer even starts. The draw is regenerated deterministically from the
// seed: "sparse(k,m,d,seed)" is a complete description of the codec
// (warmup profiles and canonical-spec pooling replay onto identical
// fingerprints).
//
// Small shapes are drawn by rejection sampling against exhaustive rank
// checks: every draw's erasure tolerance t (all t-block erasure patterns
// decodable, monotone in t) is certified over F2, non-MDS draws are
// rejected in favor of the best-certified one in the attempt budget, and a
// t = m winner is a true MDS certificate. Density bounds what is
// achievable: a systematic MDS code must have EVERY parity touch EVERY
// data block (erase a skipped block plus all parities but the skipping
// one), so d near 100 converges to MDS draws while genuinely sparse
// densities certify a smaller t — sparse_certified_tolerance() reports
// which, and the conformance harness asserts exactly that guarantee. (The
// GF(2^8) coefficients are what make rejection converge at all; a raw
// random F2 bitmatrix is singular on some square pattern almost surely.)
// Large shapes skip the certificate (sparse_mds_checked) and rely on
// plan-time solving; every accepted draw still repairs single-block
// erasures, has no zero parity rows and no uncovered data blocks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "altcodes/xor_code.hpp"

namespace xorec::altcodes {

/// Requires k >= 1, m >= 1, 1 <= density_pct <= 100; k, m <= 128 keeps the
/// bitmatrix and the certificate tractable. w = 8 strips per block. Every
/// accepted draw certifies at least single-block repair (t >= 1): the draw
/// repair forces each data block under a nonzero — hence invertible —
/// coefficient, so the rejection loop's density-too-low throw is a
/// defensive invariant, not an expected path.
XorCodeSpec sparse_spec(size_t k, size_t m, size_t density_pct, size_t seed);

/// The accepted draw's certified erasure tolerance: the largest t such that
/// every t-block erasure pattern was verified decodable by the rank checks
/// (t == m is an MDS certificate). Deterministic replay of sparse_spec's
/// rejection loop. Returns 0 for shapes sparse_mds_checked() excludes —
/// uncertified, not intolerant.
size_t sparse_certified_tolerance(size_t k, size_t m, size_t density_pct, size_t seed);

/// True when sparse_spec(k, m, ...) runs the exhaustive decodability
/// certificate (small shapes); false when the shape is too large and
/// plan-time solving is the only authority.
bool sparse_mds_checked(size_t k, size_t m);

}  // namespace xorec::altcodes
