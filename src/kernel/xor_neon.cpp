// NEON kernels for aarch64 — NEON is baseline there, so no runtime probe is
// needed beyond the compile-time gate; dispatch.cpp routes Isa::Neon (and
// Auto) here. The main loop moves 64 bytes per iteration per stream with 4
// q-register accumulators. No streaming-store form: aarch64 non-temporal
// pair stores (stnp) have no portable intrinsic and weak benefit, so
// many_nt aliases many.
#include "kernel/xor_kernel.hpp"

#if defined(XOREC_HAVE_NEON)

#include <arm_neon.h>

#include <cstring>

namespace xorec::kernel {

namespace {

template <size_t K, bool Accum>
void neon_loop(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    uint8x16_t a0, a1, a2, a3;
    const uint8_t* base = Accum ? dst : srcs[0];
    a0 = vld1q_u8(base + i);
    a1 = vld1q_u8(base + i + 16);
    a2 = vld1q_u8(base + i + 32);
    a3 = vld1q_u8(base + i + 48);
    for (size_t j = Accum ? 0 : 1; j < K; ++j) {
      a0 = veorq_u8(a0, vld1q_u8(srcs[j] + i));
      a1 = veorq_u8(a1, vld1q_u8(srcs[j] + i + 16));
      a2 = veorq_u8(a2, vld1q_u8(srcs[j] + i + 32));
      a3 = veorq_u8(a3, vld1q_u8(srcs[j] + i + 48));
    }
    vst1q_u8(dst + i, a0);
    vst1q_u8(dst + i + 16, a1);
    vst1q_u8(dst + i + 32, a2);
    vst1q_u8(dst + i + 48, a3);
  }
  for (; i + 16 <= len; i += 16) {
    uint8x16_t a = vld1q_u8((Accum ? dst : srcs[0]) + i);
    for (size_t j = Accum ? 0 : 1; j < K; ++j) a = veorq_u8(a, vld1q_u8(srcs[j] + i));
    vst1q_u8(dst + i, a);
  }
  for (; i < len; ++i) {
    uint8_t acc;
    if constexpr (Accum) {
      acc = dst[i];
      for (size_t j = 0; j < K; ++j) acc ^= srcs[j][i];
    } else {
      acc = srcs[0][i];
      for (size_t j = 1; j < K; ++j) acc ^= srcs[j][i];
    }
    dst[i] = acc;
  }
}

template <size_t K>
void xor_fixed_neon(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  if constexpr (K == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  neon_loop<K, false>(dst, srcs, len);
}

template <size_t K>
void xor_accum_neon(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  neon_loop<K, true>(dst, srcs, len);
}

}  // namespace

void xor_many_neon(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  switch (k) {
    case 1:
      if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
      return;
    case 2: xor_fixed_neon<2>(dst, srcs, len); return;
    case 3: xor_fixed_neon<3>(dst, srcs, len); return;
    case 4: xor_fixed_neon<4>(dst, srcs, len); return;
    case 5: xor_fixed_neon<5>(dst, srcs, len); return;
    case 6: xor_fixed_neon<6>(dst, srcs, len); return;
    case 7: xor_fixed_neon<7>(dst, srcs, len); return;
    case 8: xor_fixed_neon<8>(dst, srcs, len); return;
    default: break;
  }
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    uint8x16_t a = vld1q_u8(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) a = veorq_u8(a, vld1q_u8(srcs[j] + i));
    vst1q_u8(dst + i, a);
  }
  for (; i < len; ++i) {
    uint8_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

const KernelTable& neon_table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.isa = Isa::Neon;
    k.many = &xor_many_neon;
    k.many_nt = &xor_many_neon;
    k.fixed[1] = &xor_fixed_neon<1>;
    k.fixed[2] = &xor_fixed_neon<2>;
    k.fixed[3] = &xor_fixed_neon<3>;
    k.fixed[4] = &xor_fixed_neon<4>;
    k.fixed[5] = &xor_fixed_neon<5>;
    k.fixed[6] = &xor_fixed_neon<6>;
    k.fixed[7] = &xor_fixed_neon<7>;
    k.fixed[8] = &xor_fixed_neon<8>;
    k.accum[1] = &xor_accum_neon<1>;
    k.accum[2] = &xor_accum_neon<2>;
    k.accum[3] = &xor_accum_neon<3>;
    k.accum[4] = &xor_accum_neon<4>;
    k.accum[5] = &xor_accum_neon<5>;
    k.accum[6] = &xor_accum_neon<6>;
    k.accum[7] = &xor_accum_neon<7>;
    k.accum[8] = &xor_accum_neon<8>;
    return k;
  }();
  return t;
}

}  // namespace xorec::kernel

#endif  // XOREC_HAVE_NEON
