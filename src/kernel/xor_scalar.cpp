// Baseline-ISA kernels: byte-at-a-time (the paper's xor1) and uint64-word
// with a 4x-unrolled multi-word inner loop (32 bytes per iteration per
// stream, the MemXOR-style unrolling). Both fill full KernelTables — the
// fixed-arity and accumulate specializations here are what the lowered
// backend runs on machines without SIMD (and under XOREC_FORCE_ISA).
#include <cstring>

#include "kernel/xor_kernel.hpp"

namespace xorec::kernel {

namespace {

// ---- scalar ----------------------------------------------------------------

template <size_t K>
void fixed_scalar(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  if constexpr (K == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  for (size_t i = 0; i < len; ++i) {
    uint8_t acc = srcs[0][i];
    for (size_t j = 1; j < K; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

template <size_t K>
void accum_scalar(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    uint8_t acc = dst[i];
    for (size_t j = 0; j < K; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

// ---- word64 ----------------------------------------------------------------

inline uint64_t load64(const uint8_t* p) {
  uint64_t w;
  std::memcpy(&w, p, 8);  // unaligned loads are fine on x86; memcpy keeps it
  return w;               // portable and compiles to plain moves
}

inline void store64(uint8_t* p, uint64_t w) { std::memcpy(p, &w, 8); }

/// Shared word64 loop shape: 4 accumulator words (32 bytes) per iteration,
/// then single words, then a byte tail. `K` = source count; `Accum` folds
/// dst in as an implicit extra source.
template <size_t K, bool Accum>
void word64_loop(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    uint64_t a0, a1, a2, a3;
    if constexpr (Accum) {
      a0 = load64(dst + i);
      a1 = load64(dst + i + 8);
      a2 = load64(dst + i + 16);
      a3 = load64(dst + i + 24);
      for (size_t j = 0; j < K; ++j) {
        a0 ^= load64(srcs[j] + i);
        a1 ^= load64(srcs[j] + i + 8);
        a2 ^= load64(srcs[j] + i + 16);
        a3 ^= load64(srcs[j] + i + 24);
      }
    } else {
      a0 = load64(srcs[0] + i);
      a1 = load64(srcs[0] + i + 8);
      a2 = load64(srcs[0] + i + 16);
      a3 = load64(srcs[0] + i + 24);
      for (size_t j = 1; j < K; ++j) {
        a0 ^= load64(srcs[j] + i);
        a1 ^= load64(srcs[j] + i + 8);
        a2 ^= load64(srcs[j] + i + 16);
        a3 ^= load64(srcs[j] + i + 24);
      }
    }
    store64(dst + i, a0);
    store64(dst + i + 8, a1);
    store64(dst + i + 16, a2);
    store64(dst + i + 24, a3);
  }
  for (; i + 8 <= len; i += 8) {
    uint64_t acc;
    if constexpr (Accum) {
      acc = load64(dst + i);
      for (size_t j = 0; j < K; ++j) acc ^= load64(srcs[j] + i);
    } else {
      acc = load64(srcs[0] + i);
      for (size_t j = 1; j < K; ++j) acc ^= load64(srcs[j] + i);
    }
    store64(dst + i, acc);
  }
  for (; i < len; ++i) {
    uint8_t acc;
    if constexpr (Accum) {
      acc = dst[i];
      for (size_t j = 0; j < K; ++j) acc ^= srcs[j][i];
    } else {
      acc = srcs[0][i];
      for (size_t j = 1; j < K; ++j) acc ^= srcs[j][i];
    }
    dst[i] = acc;
  }
}

template <size_t K>
void fixed_word64(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  if constexpr (K == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  word64_loop<K, false>(dst, srcs, len);
}

template <size_t K>
void accum_word64(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  word64_loop<K, true>(dst, srcs, len);
}

}  // namespace

void xor_many_scalar(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  if (k == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  for (size_t i = 0; i < len; ++i) {
    uint8_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

void xor_many_word64(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  switch (k) {
    case 1: fixed_word64<1>(dst, srcs, len); return;
    case 2: fixed_word64<2>(dst, srcs, len); return;
    case 3: fixed_word64<3>(dst, srcs, len); return;
    case 4: fixed_word64<4>(dst, srcs, len); return;
    default: break;
  }
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t acc = load64(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) acc ^= load64(srcs[j] + i);
    store64(dst + i, acc);
  }
  for (; i < len; ++i) {
    uint8_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

const KernelTable& scalar_table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.isa = Isa::Scalar;
    k.many = &xor_many_scalar;
    k.many_nt = &xor_many_scalar;  // no streaming stores at byte granularity
    k.fixed[1] = &fixed_scalar<1>;
    k.fixed[2] = &fixed_scalar<2>;
    k.fixed[3] = &fixed_scalar<3>;
    k.fixed[4] = &fixed_scalar<4>;
    k.fixed[5] = &fixed_scalar<5>;
    k.fixed[6] = &fixed_scalar<6>;
    k.fixed[7] = &fixed_scalar<7>;
    k.fixed[8] = &fixed_scalar<8>;
    k.accum[1] = &accum_scalar<1>;
    k.accum[2] = &accum_scalar<2>;
    k.accum[3] = &accum_scalar<3>;
    k.accum[4] = &accum_scalar<4>;
    k.accum[5] = &accum_scalar<5>;
    k.accum[6] = &accum_scalar<6>;
    k.accum[7] = &accum_scalar<7>;
    k.accum[8] = &accum_scalar<8>;
    return k;
  }();
  return t;
}

const KernelTable& word64_table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.isa = Isa::Word64;
    k.many = &xor_many_word64;
    k.many_nt = &xor_many_word64;  // no streaming stores without SIMD
    k.fixed[1] = &fixed_word64<1>;
    k.fixed[2] = &fixed_word64<2>;
    k.fixed[3] = &fixed_word64<3>;
    k.fixed[4] = &fixed_word64<4>;
    k.fixed[5] = &fixed_word64<5>;
    k.fixed[6] = &fixed_word64<6>;
    k.fixed[7] = &fixed_word64<7>;
    k.fixed[8] = &fixed_word64<8>;
    k.accum[1] = &accum_word64<1>;
    k.accum[2] = &accum_word64<2>;
    k.accum[3] = &accum_word64<3>;
    k.accum[4] = &accum_word64<4>;
    k.accum[5] = &accum_word64<5>;
    k.accum[6] = &accum_word64<6>;
    k.accum[7] = &accum_word64<7>;
    k.accum[8] = &accum_word64<8>;
    return k;
  }();
  return t;
}

}  // namespace xorec::kernel
