#include <cstring>

#include "kernel/xor_kernel.hpp"

namespace xorec::kernel {

void xor_many_scalar(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  if (k == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  for (size_t i = 0; i < len; ++i) {
    uint8_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

void xor_many_word64(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  if (k == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  size_t i = 0;
  // Unaligned 8-byte loads/stores are fine on x86; memcpy keeps it portable
  // and compiles to plain moves.
  for (; i + 8 <= len; i += 8) {
    uint64_t acc;
    std::memcpy(&acc, srcs[0] + i, 8);
    for (size_t j = 1; j < k; ++j) {
      uint64_t w;
      std::memcpy(&w, srcs[j] + i, 8);
      acc ^= w;
    }
    std::memcpy(dst + i, &acc, 8);
  }
  for (; i < len; ++i) {
    uint8_t acc = srcs[0][i];
    for (size_t j = 1; j < k; ++j) acc ^= srcs[j][i];
    dst[i] = acc;
  }
}

}  // namespace xorec::kernel
