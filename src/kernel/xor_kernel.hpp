// Multi-input XOR kernels: the execution substrate for fused SLP®⊕
// instructions (§5) and the xor1/xor32 variants of §7.2.
//
// Contract of xor_many:
//   dst[0..len) = srcs[0] ^ srcs[1] ^ ... ^ srcs[k-1]   (k >= 1)
// - single pass: each source stream is read once, dst written once
//   (#M = k + 1 in the paper's model);
// - dst may be exactly equal to any srcs[i] (in-place accumulation); partial
//   overlap is undefined behaviour;
// - arbitrary len and alignment.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xorec::kernel {

enum class Isa : uint8_t {
  Scalar,  // byte-at-a-time (the paper's xor1)
  Word64,  // uint64 at a time
  Avx2,    // 32-byte SIMD (the paper's xor32); falls back if unsupported
  Auto,    // best available
};

using XorManyFn = void (*)(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);

/// Best implementation for the requested ISA (Avx2 silently degrades to
/// Word64 when the CPU lacks it).
XorManyFn resolve(Isa isa);

/// One-shot convenience.
void xor_many(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len,
              Isa isa = Isa::Auto);

/// True when the running CPU supports AVX2 and the library was built with it.
bool cpu_has_avx2();

const char* isa_name(Isa isa);

// Implementations (exposed for tests/benches; prefer resolve()).
void xor_many_scalar(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
void xor_many_word64(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
#if defined(XOREC_HAVE_AVX2)
void xor_many_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
#endif

}  // namespace xorec::kernel
