// Multi-input XOR kernels: the execution substrate for fused SLP®⊕
// instructions (§5) and the xor1/xor32 variants of §7.2.
//
// Contract of xor_many:
//   dst[0..len) = srcs[0] ^ srcs[1] ^ ... ^ srcs[k-1]   (k >= 1)
// - single pass: each source stream is read once, dst written once
//   (#M = k + 1 in the paper's model);
// - dst may be exactly equal to any srcs[i] (in-place accumulation); partial
//   overlap is undefined behaviour;
// - arbitrary len and alignment.
//
// Beyond the variadic entry point, every ISA exposes a KernelTable of
// fixed-arity specializations (the arity is baked into the function, so the
// inner loop has no source-count branch), fused accumulate forms
// (dst ^= srcs[0] ^ ... — dst is an implicit extra source, read once), and
// a non-temporal-store variant for blocks too large to want cache residency.
// The lowered execution backend (runtime/lowered_program.hpp) pre-resolves
// these per instruction; the interpreter keeps using xor_many.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace xorec::kernel {

enum class Isa : uint8_t {
  Scalar,  // byte-at-a-time (the paper's xor1)
  Word64,  // uint64 at a time, 4x unrolled
  Avx2,    // 32-byte SIMD (the paper's xor32); falls back if unsupported
  Avx512,  // 64-byte SIMD; falls back to Avx2/Word64 if unsupported
  Neon,    // 16-byte SIMD on aarch64; falls back to Word64 elsewhere
  Auto,    // best available
};

using XorManyFn = void (*)(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
/// Fixed-arity form: the source count is baked into the function pointer —
/// `srcs` holds exactly that many streams and the inner loop is fully
/// unrolled over them.
using XorFixedFn = void (*)(uint8_t* dst, const uint8_t* const* srcs, size_t len);

/// Largest arity with dedicated fixed/accumulate specializations; wider
/// instructions fall back to the variadic kernel.
inline constexpr size_t kMaxFixedArity = 8;

/// One ISA's full kernel family. `fixed[j]` computes dst = srcs[0]^..^srcs[j-1]
/// (fixed[1] is a copy); `accum[j]` computes dst ^= srcs[0]^..^srcs[j-1]
/// (dst is read once as an implicit extra source — the fused in-place form).
/// Index 0 of both arrays is null (an instruction always has sources).
/// `many_nt` is the variadic kernel with non-temporal stores: same contract
/// as `many` EXCEPT dst must not alias any source (the store bypasses the
/// cache, so it only pays off for destinations that are never re-read).
struct KernelTable {
  Isa isa = Isa::Scalar;  // the ISA actually implemented (post-degrade)
  XorManyFn many = nullptr;
  XorManyFn many_nt = nullptr;
  XorFixedFn fixed[kMaxFixedArity + 1] = {};
  XorFixedFn accum[kMaxFixedArity + 1] = {};
};

/// Kernel family for the requested ISA, degraded to the best supported one
/// (Avx512 -> Avx2 -> Word64; Neon -> Word64 off-ARM) and clamped by the
/// XOREC_FORCE_ISA override when set. table.isa names the selection.
const KernelTable& kernel_table(Isa isa);

/// Best variadic implementation for the requested ISA — kernel_table(isa).many.
XorManyFn resolve(Isa isa);

/// One-shot convenience.
void xor_many(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len,
              Isa isa = Isa::Auto);

/// CPU feature probes, memoized on first call (__builtin_cpu_supports used
/// to run on every resolve()).
bool cpu_has_avx2();
bool cpu_has_avx512();
bool cpu_has_neon();

/// The XOREC_FORCE_ISA override (parsed from the environment once, on first
/// dispatch): when set, EVERY resolution — Auto and explicit requests alike —
/// lands on this ISA (still degraded to what the host can execute), so the
/// full dispatch surface is testable on any machine. nullopt = no override.
std::optional<Isa> forced_isa();
/// Test hook: replace the override for the current process (nullopt restores
/// "no override", NOT the environment value). Not thread-safe against
/// in-flight resolves; call from single-threaded test setup only.
void set_forced_isa_for_testing(std::optional<Isa> isa);

const char* isa_name(Isa isa);
/// Inverse of isa_name for the spec grammar / XOREC_FORCE_ISA values;
/// nullopt for unknown names.
std::optional<Isa> parse_isa(const char* name);

// Implementations (exposed for tests/benches; prefer kernel_table()).
void xor_many_scalar(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
void xor_many_word64(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
const KernelTable& scalar_table();
const KernelTable& word64_table();
#if defined(XOREC_HAVE_AVX2)
void xor_many_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
const KernelTable& avx2_table();
#endif
#if defined(XOREC_HAVE_AVX512)
void xor_many_avx512(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
const KernelTable& avx512_table();
#endif
#if defined(XOREC_HAVE_NEON)
void xor_many_neon(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len);
const KernelTable& neon_table();
#endif

}  // namespace xorec::kernel
