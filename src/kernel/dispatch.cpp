#include "kernel/xor_kernel.hpp"

namespace xorec::kernel {

bool cpu_has_avx2() {
#if defined(XOREC_HAVE_AVX2)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

XorManyFn resolve(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return &xor_many_scalar;
    case Isa::Word64:
      return &xor_many_word64;
    case Isa::Avx2:
    case Isa::Auto:
#if defined(XOREC_HAVE_AVX2)
      if (cpu_has_avx2()) return &xor_many_avx2;
#endif
      return &xor_many_word64;
  }
  return &xor_many_scalar;
}

void xor_many(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len, Isa isa) {
  resolve(isa)(dst, srcs, k, len);
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Word64: return "word64";
    case Isa::Avx2: return "avx2";
    case Isa::Auto: return "auto";
  }
  return "?";
}

}  // namespace xorec::kernel
