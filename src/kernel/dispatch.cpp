// Runtime ISA dispatch. CPU feature probes are memoized in function-local
// statics (__builtin_cpu_supports used to run on every resolve() call), the
// XOREC_FORCE_ISA environment override is parsed once, and every resolution
// funnels through kernel_table() so interpreter and lowered backend agree on
// which kernel family executes.
#include <cstdlib>
#include <cstring>

#include "kernel/xor_kernel.hpp"

namespace xorec::kernel {

namespace {

// Override state shared by forced_isa()/set_forced_isa_for_testing(). The
// environment is consulted lazily exactly once; the test hook replaces the
// resolved value outright.
struct ForceState {
  bool parsed = false;
  std::optional<Isa> value;
};

ForceState& force_state() {
  static ForceState s;
  return s;
}

std::optional<Isa> parse_env_force() {
  const char* v = std::getenv("XOREC_FORCE_ISA");
  if (!v || !*v) return std::nullopt;
  return parse_isa(v);  // unknown names silently mean "no override"
}

/// Degrade a concrete ISA request to the best family the host supports.
const KernelTable& host_table(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return scalar_table();
    case Isa::Word64:
      return word64_table();
    case Isa::Neon:
#if defined(XOREC_HAVE_NEON)
      if (cpu_has_neon()) return neon_table();
#endif
      return word64_table();
    case Isa::Avx512:
#if defined(XOREC_HAVE_AVX512)
      if (cpu_has_avx512()) return avx512_table();
#endif
      [[fallthrough]];
    case Isa::Avx2:
#if defined(XOREC_HAVE_AVX2)
      if (cpu_has_avx2()) return avx2_table();
#endif
      return word64_table();
    case Isa::Auto:
      break;
  }
  // Auto: best available, widest first.
#if defined(XOREC_HAVE_AVX512)
  if (cpu_has_avx512()) return avx512_table();
#endif
#if defined(XOREC_HAVE_AVX2)
  if (cpu_has_avx2()) return avx2_table();
#endif
#if defined(XOREC_HAVE_NEON)
  if (cpu_has_neon()) return neon_table();
#endif
  return word64_table();
}

}  // namespace

bool cpu_has_avx2() {
#if defined(XOREC_HAVE_AVX2)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(XOREC_HAVE_AVX512)
  // avx512bw is the gate: the kernels use byte/word ops, and every avx512bw
  // part also has f/vl.
  static const bool has =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
  return has;
#else
  return false;
#endif
}

bool cpu_has_neon() {
#if defined(XOREC_HAVE_NEON)
  return true;  // NEON is baseline on aarch64
#else
  return false;
#endif
}

std::optional<Isa> forced_isa() {
  ForceState& s = force_state();
  if (!s.parsed) {
    s.value = parse_env_force();
    s.parsed = true;
  }
  return s.value;
}

void set_forced_isa_for_testing(std::optional<Isa> isa) {
  ForceState& s = force_state();
  s.parsed = true;
  s.value = isa;
}

const KernelTable& kernel_table(Isa isa) {
  if (auto f = forced_isa()) isa = *f;
  return host_table(isa);
}

XorManyFn resolve(Isa isa) { return kernel_table(isa).many; }

void xor_many(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len, Isa isa) {
  kernel_table(isa).many(dst, srcs, k, len);
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Word64: return "word64";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
    case Isa::Neon: return "neon";
    case Isa::Auto: return "auto";
  }
  return "?";
}

std::optional<Isa> parse_isa(const char* name) {
  if (!name) return std::nullopt;
  if (std::strcmp(name, "scalar") == 0) return Isa::Scalar;
  if (std::strcmp(name, "word64") == 0) return Isa::Word64;
  if (std::strcmp(name, "avx2") == 0) return Isa::Avx2;
  if (std::strcmp(name, "avx512") == 0) return Isa::Avx512;
  if (std::strcmp(name, "neon") == 0) return Isa::Neon;
  if (std::strcmp(name, "auto") == 0) return Isa::Auto;
  return std::nullopt;
}

}  // namespace xorec::kernel
