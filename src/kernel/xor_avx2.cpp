// AVX2 kernels — compiled with -mavx2 in this TU only; selected at runtime
// by dispatch.cpp. The 2x-unrolled main loop moves 64 bytes per iteration
// per stream, matching the paper's xor32 (mm256_xor) inner loop.
#include <immintrin.h>

#include <cstring>

#include "kernel/xor_kernel.hpp"

namespace xorec::kernel {

namespace {

template <size_t K>
void xor_fixed_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i + 32));
    for (size_t j = 1; j < K; ++j) {
      a0 = _mm256_xor_si256(a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
      a1 = _mm256_xor_si256(a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i + 32)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
  }
  for (; i + 32 <= len; i += 32) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    for (size_t j = 1; j < K; ++j)
      a = _mm256_xor_si256(a, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a);
  }
  if (i < len) {
    for (size_t b = i; b < len; ++b) {
      uint8_t acc = srcs[0][b];
      for (size_t j = 1; j < K; ++j) acc ^= srcs[j][b];
      dst[b] = acc;
    }
  }
}

void xor_generic_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i + 32));
    for (size_t j = 1; j < k; ++j) {
      a0 = _mm256_xor_si256(a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
      a1 = _mm256_xor_si256(a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i + 32)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
  }
  if (i < len) {
    // Tail: byte loop keeps it simple; fused instructions in hot paths run
    // on whole blocks, so this only triggers for ragged strip lengths.
    for (size_t b = i; b < len; ++b) {
      uint8_t acc = srcs[0][b];
      for (size_t j = 1; j < k; ++j) acc ^= srcs[j][b];
      dst[b] = acc;
    }
  }
}

}  // namespace

void xor_many_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  switch (k) {
    case 1:
      if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
      return;
    case 2: xor_fixed_avx2<2>(dst, srcs, len); return;
    case 3: xor_fixed_avx2<3>(dst, srcs, len); return;
    case 4: xor_fixed_avx2<4>(dst, srcs, len); return;
    case 5: xor_fixed_avx2<5>(dst, srcs, len); return;
    case 6: xor_fixed_avx2<6>(dst, srcs, len); return;
    case 7: xor_fixed_avx2<7>(dst, srcs, len); return;
    case 8: xor_fixed_avx2<8>(dst, srcs, len); return;
    default: xor_generic_avx2(dst, srcs, k, len); return;
  }
}

}  // namespace xorec::kernel
