// AVX2 kernels — compiled with -mavx2 in this TU only; selected at runtime
// by dispatch.cpp. The 2x-unrolled main loop moves 64 bytes per iteration
// per stream, matching the paper's xor32 (mm256_xor) inner loop. The table
// adds fixed-arity specializations, fused accumulate (dst ^= ...) forms, and
// a non-temporal-store variadic kernel for blocks past cache size.
#include "kernel/xor_kernel.hpp"

#if defined(XOREC_HAVE_AVX2)

#include <immintrin.h>

#include <cstring>

namespace xorec::kernel {

namespace {

/// 64 bytes per iteration: 2 ymm accumulators. `Accum` folds dst in as an
/// implicit extra source (read exactly once).
template <size_t K, bool Accum>
void avx2_loop(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i a0, a1;
    if constexpr (Accum) {
      a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    } else {
      a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
      a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i + 32));
    }
    for (size_t j = Accum ? 0 : 1; j < K; ++j) {
      a0 = _mm256_xor_si256(a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
      a1 = _mm256_xor_si256(a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i + 32)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
  }
  for (; i + 32 <= len; i += 32) {
    __m256i a;
    if constexpr (Accum)
      a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    else
      a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    for (size_t j = Accum ? 0 : 1; j < K; ++j)
      a = _mm256_xor_si256(a, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a);
  }
  for (; i < len; ++i) {
    uint8_t acc;
    if constexpr (Accum) {
      acc = dst[i];
      for (size_t j = 0; j < K; ++j) acc ^= srcs[j][i];
    } else {
      acc = srcs[0][i];
      for (size_t j = 1; j < K; ++j) acc ^= srcs[j][i];
    }
    dst[i] = acc;
  }
}

template <size_t K>
void xor_fixed_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  if constexpr (K == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  avx2_loop<K, false>(dst, srcs, len);
}

template <size_t K>
void xor_accum_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  avx2_loop<K, true>(dst, srcs, len);
}

void xor_generic_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i + 32));
    for (size_t j = 1; j < k; ++j) {
      a0 = _mm256_xor_si256(a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
      a1 = _mm256_xor_si256(a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i + 32)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
  }
  if (i < len) {
    // Tail: byte loop keeps it simple; fused instructions in hot paths run
    // on whole blocks, so this only triggers for ragged strip lengths.
    for (size_t b = i; b < len; ++b) {
      uint8_t acc = srcs[0][b];
      for (size_t j = 1; j < k; ++j) acc ^= srcs[j][b];
      dst[b] = acc;
    }
  }
}

/// Non-temporal variadic kernel: stores bypass the cache (the lowered
/// backend uses it for huge-block final writes that are never re-read).
/// _mm256_stream_si256 requires a 32-byte-aligned destination, so the head
/// runs unaligned until dst reaches alignment, then the body streams.
/// Contract narrowing: dst must NOT alias any source.
void xor_many_nt_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  const size_t mis = reinterpret_cast<uintptr_t>(dst) & 31u;
  const size_t head = mis ? (32 - mis < len ? 32 - mis : len) : 0;
  if (head) xor_many_avx2(dst, srcs, k, head);
  size_t i = head;
  for (; i + 32 <= len; i += 32) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[0] + i));
    for (size_t j = 1; j < k; ++j)
      a = _mm256_xor_si256(a, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i)));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i), a);
  }
  if (i < len) {
    for (size_t b = i; b < len; ++b) {
      uint8_t acc = srcs[0][b];
      for (size_t j = 1; j < k; ++j) acc ^= srcs[j][b];
      dst[b] = acc;
    }
  }
  _mm_sfence();  // streaming stores are weakly ordered; publish before return
}

}  // namespace

void xor_many_avx2(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  switch (k) {
    case 1:
      if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
      return;
    case 2: xor_fixed_avx2<2>(dst, srcs, len); return;
    case 3: xor_fixed_avx2<3>(dst, srcs, len); return;
    case 4: xor_fixed_avx2<4>(dst, srcs, len); return;
    case 5: xor_fixed_avx2<5>(dst, srcs, len); return;
    case 6: xor_fixed_avx2<6>(dst, srcs, len); return;
    case 7: xor_fixed_avx2<7>(dst, srcs, len); return;
    case 8: xor_fixed_avx2<8>(dst, srcs, len); return;
    default: xor_generic_avx2(dst, srcs, k, len); return;
  }
}

const KernelTable& avx2_table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.isa = Isa::Avx2;
    k.many = &xor_many_avx2;
    k.many_nt = &xor_many_nt_avx2;
    k.fixed[1] = &xor_fixed_avx2<1>;
    k.fixed[2] = &xor_fixed_avx2<2>;
    k.fixed[3] = &xor_fixed_avx2<3>;
    k.fixed[4] = &xor_fixed_avx2<4>;
    k.fixed[5] = &xor_fixed_avx2<5>;
    k.fixed[6] = &xor_fixed_avx2<6>;
    k.fixed[7] = &xor_fixed_avx2<7>;
    k.fixed[8] = &xor_fixed_avx2<8>;
    k.accum[1] = &xor_accum_avx2<1>;
    k.accum[2] = &xor_accum_avx2<2>;
    k.accum[3] = &xor_accum_avx2<3>;
    k.accum[4] = &xor_accum_avx2<4>;
    k.accum[5] = &xor_accum_avx2<5>;
    k.accum[6] = &xor_accum_avx2<6>;
    k.accum[7] = &xor_accum_avx2<7>;
    k.accum[8] = &xor_accum_avx2<8>;
    return k;
  }();
  return t;
}

}  // namespace xorec::kernel

#endif  // XOREC_HAVE_AVX2
