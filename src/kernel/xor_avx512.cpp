// AVX-512 kernels — compiled with -mavx512f -mavx512bw in this TU only and
// selected at runtime by dispatch.cpp (cpu_has_avx512 gates on f+bw). The
// main loop moves 128 bytes per iteration per stream with 2 zmm
// accumulators; the non-temporal variant streams 64-byte stores for
// destinations that are never re-read.
#include "kernel/xor_kernel.hpp"

#if defined(XOREC_HAVE_AVX512)

#include <immintrin.h>

#include <cstring>

namespace xorec::kernel {

namespace {

template <size_t K, bool Accum>
void avx512_loop(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    __m512i a0, a1;
    if constexpr (Accum) {
      a0 = _mm512_loadu_si512(dst + i);
      a1 = _mm512_loadu_si512(dst + i + 64);
    } else {
      a0 = _mm512_loadu_si512(srcs[0] + i);
      a1 = _mm512_loadu_si512(srcs[0] + i + 64);
    }
    for (size_t j = Accum ? 0 : 1; j < K; ++j) {
      a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[j] + i));
      a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(srcs[j] + i + 64));
    }
    _mm512_storeu_si512(dst + i, a0);
    _mm512_storeu_si512(dst + i + 64, a1);
  }
  for (; i + 64 <= len; i += 64) {
    __m512i a;
    if constexpr (Accum)
      a = _mm512_loadu_si512(dst + i);
    else
      a = _mm512_loadu_si512(srcs[0] + i);
    for (size_t j = Accum ? 0 : 1; j < K; ++j)
      a = _mm512_xor_si512(a, _mm512_loadu_si512(srcs[j] + i));
    _mm512_storeu_si512(dst + i, a);
  }
  if (i < len) {
    // Masked epilogue: one partial 64-byte lane instead of a byte loop.
    const __mmask64 m = _cvtu64_mask64((~uint64_t{0}) >> (64 - (len - i)));
    __m512i a;
    if constexpr (Accum)
      a = _mm512_maskz_loadu_epi8(m, dst + i);
    else
      a = _mm512_maskz_loadu_epi8(m, srcs[0] + i);
    for (size_t j = Accum ? 0 : 1; j < K; ++j)
      a = _mm512_xor_si512(a, _mm512_maskz_loadu_epi8(m, srcs[j] + i));
    _mm512_mask_storeu_epi8(dst + i, m, a);
  }
}

template <size_t K>
void xor_fixed_avx512(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  if constexpr (K == 1) {
    if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
    return;
  }
  avx512_loop<K, false>(dst, srcs, len);
}

template <size_t K>
void xor_accum_avx512(uint8_t* dst, const uint8_t* const* srcs, size_t len) {
  avx512_loop<K, true>(dst, srcs, len);
}

void xor_generic_avx512(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  size_t i = 0;
  for (; i + 128 <= len; i += 128) {
    __m512i a0 = _mm512_loadu_si512(srcs[0] + i);
    __m512i a1 = _mm512_loadu_si512(srcs[0] + i + 64);
    for (size_t j = 1; j < k; ++j) {
      a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[j] + i));
      a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(srcs[j] + i + 64));
    }
    _mm512_storeu_si512(dst + i, a0);
    _mm512_storeu_si512(dst + i + 64, a1);
  }
  for (; i + 64 <= len; i += 64) {
    __m512i a = _mm512_loadu_si512(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) a = _mm512_xor_si512(a, _mm512_loadu_si512(srcs[j] + i));
    _mm512_storeu_si512(dst + i, a);
  }
  if (i < len) {
    const __mmask64 m = _cvtu64_mask64((~uint64_t{0}) >> (64 - (len - i)));
    __m512i a = _mm512_maskz_loadu_epi8(m, srcs[0] + i);
    for (size_t j = 1; j < k; ++j)
      a = _mm512_xor_si512(a, _mm512_maskz_loadu_epi8(m, srcs[j] + i));
    _mm512_mask_storeu_epi8(dst + i, m, a);
  }
}

/// Non-temporal variant: _mm512_stream_si512 needs a 64-byte-aligned dst, so
/// an unaligned head runs through the regular kernel first.
/// Contract narrowing: dst must NOT alias any source.
void xor_many_nt_avx512(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  const size_t mis = reinterpret_cast<uintptr_t>(dst) & 63u;
  const size_t head = mis ? (64 - mis < len ? 64 - mis : len) : 0;
  if (head) xor_generic_avx512(dst, srcs, k, head);
  size_t i = head;
  for (; i + 64 <= len; i += 64) {
    __m512i a = _mm512_loadu_si512(srcs[0] + i);
    for (size_t j = 1; j < k; ++j) a = _mm512_xor_si512(a, _mm512_loadu_si512(srcs[j] + i));
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst + i), a);
  }
  if (i < len) {
    const __mmask64 m = _cvtu64_mask64((~uint64_t{0}) >> (64 - (len - i)));
    __m512i a = _mm512_maskz_loadu_epi8(m, srcs[0] + i);
    for (size_t j = 1; j < k; ++j)
      a = _mm512_xor_si512(a, _mm512_maskz_loadu_epi8(m, srcs[j] + i));
    _mm512_mask_storeu_epi8(dst + i, m, a);
  }
  _mm_sfence();  // streaming stores are weakly ordered; publish before return
}

}  // namespace

void xor_many_avx512(uint8_t* dst, const uint8_t* const* srcs, size_t k, size_t len) {
  switch (k) {
    case 1:
      if (dst != srcs[0]) std::memmove(dst, srcs[0], len);
      return;
    case 2: xor_fixed_avx512<2>(dst, srcs, len); return;
    case 3: xor_fixed_avx512<3>(dst, srcs, len); return;
    case 4: xor_fixed_avx512<4>(dst, srcs, len); return;
    case 5: xor_fixed_avx512<5>(dst, srcs, len); return;
    case 6: xor_fixed_avx512<6>(dst, srcs, len); return;
    case 7: xor_fixed_avx512<7>(dst, srcs, len); return;
    case 8: xor_fixed_avx512<8>(dst, srcs, len); return;
    default: xor_generic_avx512(dst, srcs, k, len); return;
  }
}

const KernelTable& avx512_table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.isa = Isa::Avx512;
    k.many = &xor_many_avx512;
    k.many_nt = &xor_many_nt_avx512;
    k.fixed[1] = &xor_fixed_avx512<1>;
    k.fixed[2] = &xor_fixed_avx512<2>;
    k.fixed[3] = &xor_fixed_avx512<3>;
    k.fixed[4] = &xor_fixed_avx512<4>;
    k.fixed[5] = &xor_fixed_avx512<5>;
    k.fixed[6] = &xor_fixed_avx512<6>;
    k.fixed[7] = &xor_fixed_avx512<7>;
    k.fixed[8] = &xor_fixed_avx512<8>;
    k.accum[1] = &xor_accum_avx512<1>;
    k.accum[2] = &xor_accum_avx512<2>;
    k.accum[3] = &xor_accum_avx512<3>;
    k.accum[4] = &xor_accum_avx512<4>;
    k.accum[5] = &xor_accum_avx512<5>;
    k.accum[6] = &xor_accum_avx512<6>;
    k.accum[7] = &xor_accum_avx512<7>;
    k.accum[8] = &xor_accum_avx512<8>;
    return k;
  }();
  return t;
}

}  // namespace xorec::kernel

#endif  // XOREC_HAVE_AVX512
