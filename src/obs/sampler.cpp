#include "obs/sampler.hpp"

#include <algorithm>

#include "api/service.hpp"

namespace xorec::obs {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Sampler::Sampler(MetricsRegistry& registry, SamplerOptions opt)
    : registry_(registry), opt_(opt) {
  if (opt_.capacity == 0) opt_.capacity = 1;
  registry_.add_source([this](std::vector<Metric>& out) { append_window_metrics(out); });
}

Sampler::~Sampler() {
  stop();
  std::lock_guard lk(dmu_);
  for (CodecService* s : driven_) s->set_shard_load_provider({});
  driven_.clear();
}

void Sampler::start() {
  std::lock_guard lk(tmu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  {
    std::lock_guard lk(tmu_);
    if (!running_) return;
    stop_ = true;
  }
  tcv_.notify_all();
  thread_.join();
  std::lock_guard lk(tmu_);
  running_ = false;
}

void Sampler::run() {
  std::unique_lock lk(tmu_);
  while (!stop_) {
    lk.unlock();
    sample_now();
    lk.lock();
    tcv_.wait_for(lk, opt_.interval, [this] { return stop_; });
  }
}

void Sampler::sample_now() {
  // Collect BEFORE taking the ring mutex: collect() walks the attached
  // stats() paths (service mutex et al.), and our own registered window
  // source takes the ring mutex — neither may nest inside the other.
  MetricSnapshot snap = registry_.collect();
  std::lock_guard lk(mu_);
  ring_.push_back(std::move(snap));
  while (ring_.size() > opt_.capacity) ring_.pop_front();
}

size_t Sampler::samples() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

double Sampler::window_seconds() const {
  std::lock_guard lk(mu_);
  if (ring_.size() < 2) return 0;
  return seconds_between(ring_.front().at, ring_.back().at);
}

double Sampler::rate_per_second(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  std::lock_guard lk(mu_);
  if (ring_.size() < 2) return 0;
  const Metric* oldest = ring_.front().find(name, labels);
  const Metric* newest = ring_.back().find(name, labels);
  if (!oldest || !newest) return 0;
  const double dt = seconds_between(ring_.front().at, ring_.back().at);
  if (dt <= 0) return 0;
  return (newest->value - oldest->value) / dt;
}

double Sampler::window_mean(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  std::lock_guard lk(mu_);
  double sum = 0;
  size_t n = 0;
  for (const MetricSnapshot& snap : ring_) {
    if (const Metric* m = snap.find(name, labels)) {
      sum += m->value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

std::vector<double> Sampler::shard_depth_means() const {
  std::lock_guard lk(mu_);
  std::vector<double> sums;
  std::vector<size_t> counts;
  for (const MetricSnapshot& snap : ring_) {
    for (const Metric& m : snap.metrics) {
      if (m.name != "xorec_shard_queue_depth") continue;
      // The single label is {"shard", "<id>"} (append_service).
      if (m.labels.size() != 1) continue;
      const size_t shard = static_cast<size_t>(std::stoul(m.labels[0].second));
      if (shard >= sums.size()) {
        sums.resize(shard + 1, 0);
        counts.resize(shard + 1, 0);
      }
      sums[shard] += m.value;
      ++counts[shard];
    }
  }
  std::vector<double> means(sums.size(), 0);
  for (size_t i = 0; i < sums.size(); ++i)
    if (counts[i]) means[i] = sums[i] / static_cast<double>(counts[i]);
  return means;
}

void Sampler::drive_placement(CodecService& service) {
  {
    std::lock_guard lk(dmu_);
    if (std::find(driven_.begin(), driven_.end(), &service) == driven_.end())
      driven_.push_back(&service);
  }
  service.set_shard_load_provider([this] { return shard_depth_means(); });
}

void Sampler::append_window_metrics(std::vector<Metric>& out) const {
  const auto gauge = [&out](std::string name, std::vector<std::pair<std::string, std::string>> labels,
                            const char* help, double v) {
    out.push_back({std::move(name), std::move(labels), MetricKind::Gauge, "window", help, v});
  };

  double win_s = 0;
  size_t n = 0;
  double hit_delta = 0, lookup_delta = 0, lifetime_ratio = 0;
  std::vector<double> depth_means;
  std::vector<double> gBps;
  {
    std::lock_guard lk(mu_);
    n = ring_.size();
    if (n >= 2) {
      const MetricSnapshot& a = ring_.front();
      const MetricSnapshot& b = ring_.back();
      win_s = seconds_between(a.at, b.at);
      hit_delta = b.value_or("xorec_plan_cache_warm_hits_total") -
                  a.value_or("xorec_plan_cache_warm_hits_total");
      lookup_delta = hit_delta + b.value_or("xorec_plan_cache_warm_misses_total") -
                     a.value_or("xorec_plan_cache_warm_misses_total");
      lifetime_ratio = b.value_or("xorec_plan_cache_warm_hit_ratio");
      if (win_s > 0) {
        for (const Metric& m : b.metrics) {
          if (m.name != "xorec_shard_bytes_coded_total" || m.labels.size() != 1) continue;
          const size_t shard = static_cast<size_t>(std::stoul(m.labels[0].second));
          if (shard >= gBps.size()) gBps.resize(shard + 1, 0);
          const double delta = m.value - a.value_or(m.name, m.labels);
          gBps[shard] = delta / win_s / 1e9;
        }
      }
    }
  }
  depth_means = shard_depth_means();

  gauge("xorec_window_seconds", {}, "Timespan covered by the sampler ring.", win_s);
  gauge("xorec_window_samples", {}, "Snapshots currently in the sampler ring.",
        static_cast<double>(n));
  for (size_t i = 0; i < depth_means.size(); ++i)
    gauge("xorec_shard_queue_depth_window_mean", {{"shard", std::to_string(i)}},
          "Mean TaskQueue depth of this shard over the sampler window — the "
          "depth-driven placement signal.",
          depth_means[i]);
  for (size_t i = 0; i < gBps.size(); ++i)
    gauge("xorec_shard_throughput_window_gBps", {{"shard", std::to_string(i)}},
          "Gigabytes/s coded by this shard over the sampler window "
          "(d bytes_coded / dt), not the lifetime average.",
          gBps[i]);
  gauge("xorec_plan_cache_hit_ratio_window", {},
        "Plan-cache hit ratio of lookups inside the sampler window (falls "
        "back to the lifetime warm ratio when the window saw no lookups).",
        lookup_delta > 0 ? hit_delta / lookup_delta : lifetime_ratio);
}

}  // namespace xorec::obs
