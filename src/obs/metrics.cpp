#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "api/service.hpp"
#include "bench/bench_json.hpp"
#include "net/server.hpp"

namespace xorec::obs {

namespace {

/// Whole numbers print without a decimal point (same rule as the bench
/// JSON artifacts: byte-identical states render byte-identically).
std::string format_value(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9.0e15)
    return std::to_string(static_cast<long long>(v));
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

using Labels = std::vector<std::pair<std::string, std::string>>;

struct Emit {
  std::vector<Metric>& out;
  const char* group;

  void counter(std::string name, Labels labels, const char* help, double v) {
    out.push_back({std::move(name), std::move(labels), MetricKind::Counter, group, help, v});
  }
  void gauge(std::string name, Labels labels, const char* help, double v) {
    out.push_back({std::move(name), std::move(labels), MetricKind::Gauge, group, help, v});
  }
};

void append_service(const CodecService& service, std::vector<Metric>& out) {
  const ServiceStats st = service.stats();

  Emit svc{out, "service"};
  svc.gauge("xorec_service_uptime_seconds", {}, "Seconds since service construction.",
            st.uptime_s);
  svc.gauge("xorec_service_shards", {}, "Shard (worker-session) count.",
            static_cast<double>(st.shards.size()));
  svc.gauge("xorec_service_pools", {}, "Pooled codec instances (creation order, never dropped).",
            static_cast<double>(st.pools.size()));

  Emit shard{out, "shard"};
  for (const ShardStats& s : st.shards) {
    const Labels l{{"shard", std::to_string(s.shard)}};
    shard.gauge("xorec_shard_workers", l, "Dedicated TaskQueue workers of this shard.",
                static_cast<double>(s.workers));
    shard.gauge("xorec_shard_pools", l, "Pools pinned to this shard.",
                static_cast<double>(s.pools));
    shard.counter("xorec_shard_jobs_total", l, "Jobs routed to this shard.",
                  static_cast<double>(s.submitted));
    shard.gauge("xorec_shard_queue_depth", l,
                "Jobs submitted but not yet finished (TaskQueue::depth), right now.",
                static_cast<double>(s.queue_depth));
    shard.counter("xorec_shard_bytes_coded_total", l,
                  "Payload bytes moved by routed jobs (data in + rebuilt out).",
                  static_cast<double>(s.bytes_coded));
    shard.gauge("xorec_shard_throughput_gBps", l,
                "Lifetime-average gigabytes/s (bytes_coded / uptime); windowed rates "
                "come from the sampler (xorec_shard_throughput_window_gBps).",
                s.throughput_gBps);
  }

  Emit pool{out, "pool"};
  for (const PoolStats& p : st.pools) {
    const Labels l{{"pool", p.spec}};
    pool.counter("xorec_pool_clients_total", l, "acquire() calls resolved to this pool.",
                 static_cast<double>(p.clients));
    pool.counter("xorec_pool_encodes_total", l, "Routed encode jobs.",
                 static_cast<double>(p.encodes));
    pool.counter("xorec_pool_plans_total", l, "plan_reconstruct calls through handles.",
                 static_cast<double>(p.plans));
    pool.counter("xorec_pool_reconstructs_total", l, "Routed reconstruct/rebuild jobs.",
                 static_cast<double>(p.reconstructs));
    pool.gauge("xorec_pool_cached_programs", l,
               "Plan-cache entries for this codec identity, right now.",
               static_cast<double>(p.cached_programs));
    pool.counter("xorec_pool_strips_read_total", l,
                 "Survivor strips read by repair jobs (plan read_set granularity).",
                 static_cast<double>(p.strips_read));
    pool.counter("xorec_pool_repair_bytes_in_total", l, "Survivor bytes read by repair jobs.",
                 static_cast<double>(p.repair_bytes_in));
    pool.counter("xorec_pool_repair_bytes_out_total", l, "Rebuilt bytes written by repair jobs.",
                 static_cast<double>(p.repair_bytes_out));
    pool.counter("xorec_pool_net_requests_total", l,
                 "Wire requests attributed to this pool by the net front-end.",
                 static_cast<double>(p.net_requests));
    pool.counter("xorec_pool_net_bytes_in_total", l, "Wire bytes received for this pool.",
                 static_cast<double>(p.net_bytes_in));
    pool.counter("xorec_pool_net_bytes_out_total", l, "Wire bytes sent for this pool.",
                 static_cast<double>(p.net_bytes_out));
    Labels info{{"pool", p.spec},
                {"shard", std::to_string(p.shard)},
                {"exec", p.exec_backend},
                {"isa", p.exec_isa}};
    pool.gauge("xorec_pool_info", std::move(info),
               "Constant 1: pool shard pin and resolved exec backend/ISA as labels.", 1);
  }

  Emit cache{out, "plan_cache"};
  cache.gauge("xorec_plan_cache_entries", {}, "Compiled programs currently cached.",
              static_cast<double>(st.cache.entries));
  cache.counter("xorec_plan_cache_hits_total", {}, "Plan lookups served without compiling.",
                static_cast<double>(st.cache.hits));
  cache.counter("xorec_plan_cache_misses_total", {}, "Plan lookups that compiled.",
                static_cast<double>(st.cache.misses));
  cache.counter("xorec_plan_cache_evictions_total", {}, "Entries LRU-evicted.",
                static_cast<double>(st.cache.evictions));
  cache.counter("xorec_plan_cache_compile_seconds_total", {},
                "Wall time spent compiling on misses.",
                static_cast<double>(st.cache.compile_ns) / 1e9);
  cache.counter("xorec_plan_cache_warm_hits_total", {},
                "Hits since the warmup point (the serving-window numerator).",
                static_cast<double>(st.warm_hits));
  cache.counter("xorec_plan_cache_warm_misses_total", {},
                "Misses since the warmup point.", static_cast<double>(st.warm_misses));
  cache.gauge("xorec_plan_cache_warm_hit_ratio", {},
              "Hit ratio of the serving window (lifetime; windowed ratio comes from "
              "the sampler as xorec_plan_cache_hit_ratio_window).",
              st.warm_hit_rate());
  for (size_t i = 0; i < st.cache_level_misses.size(); ++i)
    cache.gauge("xorec_plan_cache_level_misses", {{"level", std::to_string(i)}},
                "Simulated per-level miss totals of the multilevel-scheduled programs "
                "currently cached (last level = memory loads).",
                static_cast<double>(st.cache_level_misses[i]));

  Emit jit{out, "jit"};
  jit.counter("xorec_jit_compiles_total", {}, "Host-compiler invocations (cold artifacts built).",
              static_cast<double>(st.jit.compiles));
  jit.counter("xorec_jit_artifact_loads_total", {},
              "On-disk artifacts dlopened warm (no compiler).",
              static_cast<double>(st.jit.artifact_loads));
  jit.counter("xorec_jit_memory_hits_total", {}, "In-process memo hits (already dlopened).",
              static_cast<double>(st.jit.memory_hits));
  jit.counter("xorec_jit_fallbacks_total", {}, "exec=jit requests degraded to exec=lowered.",
              static_cast<double>(st.jit.fallbacks));
  jit.counter("xorec_jit_rejected_total", {}, "Corrupt/unloadable artifacts discarded.",
              static_cast<double>(st.jit.rejected));
  jit.counter("xorec_jit_compile_seconds_total", {}, "Wall time inside the host compiler.",
              static_cast<double>(st.jit.compile_ns) / 1e9);
  jit.counter("xorec_jit_load_seconds_total", {}, "Wall time in dlopen/dlsym of artifacts.",
              static_cast<double>(st.jit.load_ns) / 1e9);
}

void append_net(const net::NetServer& server, std::vector<Metric>& out) {
  const net::NetServerStats st = server.stats();
  Emit net{out, "net"};
  net.counter("xorec_net_connections_accepted_total", {}, "TCP connections accepted.",
              static_cast<double>(st.connections_accepted));
  net.gauge("xorec_net_connections_open", {}, "TCP connections open right now.",
            static_cast<double>(st.connections_open));
  net.counter("xorec_net_requests_total", {}, "Well-formed TCP requests dispatched.",
              static_cast<double>(st.requests));
  net.counter("xorec_net_responses_total", {}, "Response frames written (incl. Pong).",
              static_cast<double>(st.responses));
  net.counter("xorec_net_errors_total", {}, "Error frames written + fatal parse closes.",
              static_cast<double>(st.errors));
  net.counter("xorec_net_backpressure_stalls_total", {},
              "Requests parked on a full shard queue.",
              static_cast<double>(st.backpressure_stalls));
  net.counter("xorec_net_tcp_bytes_in_total", {}, "TCP bytes received.",
              static_cast<double>(st.tcp_bytes_in));
  net.counter("xorec_net_tcp_bytes_out_total", {}, "TCP bytes sent.",
              static_cast<double>(st.tcp_bytes_out));
  net.counter("xorec_net_writev_calls_total", {}, "writev(2) calls on the send path.",
              static_cast<double>(st.writev_calls));
  net.counter("xorec_net_writev_segments_total", {}, "iovec entries across all writev calls.",
              static_cast<double>(st.writev_segments));
  net.counter("xorec_net_gather_bytes_saved_total", {},
              "Response-body bytes never re-copied thanks to scatter/gather.",
              static_cast<double>(st.gather_bytes_saved));
  net.counter("xorec_net_udp_groups_total", {}, "UDP stripe groups completed.",
              static_cast<double>(st.udp_groups));
  net.counter("xorec_net_udp_degraded_reads_total", {},
              "Groups that needed reconstruction.",
              static_cast<double>(st.udp_degraded_reads));
  net.counter("xorec_net_udp_unrecoverable_total", {},
              "Groups beyond the code's tolerance.",
              static_cast<double>(st.udp_unrecoverable));
}

}  // namespace

const Metric* MetricSnapshot::find(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  for (const Metric& m : metrics)
    if (m.name == name && m.labels == labels) return &m;
  return nullptr;
}

double MetricSnapshot::value_or(
    std::string_view name, const std::vector<std::pair<std::string, std::string>>& labels,
    double fallback) const {
  const Metric* m = find(name, labels);
  return m ? m->value : fallback;
}

void MetricsRegistry::attach(const CodecService& service) {
  add_source([&service](std::vector<Metric>& out) { append_service(service, out); });
}

void MetricsRegistry::attach(const net::NetServer& server) {
  add_source([&server](std::vector<Metric>& out) { append_net(server, out); });
}

void MetricsRegistry::add_source(Source source) {
  std::lock_guard lk(mu_);
  sources_.push_back(std::move(source));
}

MetricSnapshot MetricsRegistry::collect() const {
  std::vector<Source> sources;
  {
    std::lock_guard lk(mu_);
    sources = sources_;
  }
  MetricSnapshot snap;
  snap.at = std::chrono::steady_clock::now();
  // Sources run OUTSIDE the registry lock: each reads its subsystem's own
  // thread-safe stats() snapshot, and a slow source must not serialize a
  // concurrent scrape.
  for (const Source& s : sources) s(snap.metrics);
  return snap;
}

std::string render_label_set(const Metric& metric) {
  if (metric.labels.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < metric.labels.size(); ++i) {
    if (i) out += ",";
    out += metric.labels[i].first + "=" + metric.labels[i].second;
  }
  return out;
}

std::string render_prometheus(const MetricSnapshot& snapshot) {
  // The exposition format requires every sample of a family to appear as
  // one group. Sources interleave families (per-shard loops emit shard 0's
  // whole set, then shard 1's), so group by name in first-occurrence order.
  std::vector<std::string_view> family_order;
  std::unordered_set<std::string_view> seen;
  for (const Metric& m : snapshot.metrics)
    if (seen.insert(m.name).second) family_order.push_back(m.name);

  std::string out;
  for (std::string_view family : family_order) {
    bool header_done = false;
    for (const Metric& m : snapshot.metrics) {
      if (m.name != family) continue;
      if (!header_done) {
        out += "# HELP ";
        out += m.name;
        out += " ";
        out += m.help;
        out += "\n# TYPE ";
        out += m.name;
        out += m.kind == MetricKind::Counter ? " counter\n" : " gauge\n";
        header_done = true;
      }
      out += m.name;
      if (!m.labels.empty()) {
        out += "{";
        for (size_t i = 0; i < m.labels.size(); ++i) {
          if (i) out += ",";
          out += m.labels[i].first;
          out += "=\"";
          out += escape_label_value(m.labels[i].second);
          out += "\"";
        }
        out += "}";
      }
      out += " ";
      out += format_value(m.value);
      out += "\n";
    }
  }
  return out;
}

std::string render_stats_json(const MetricSnapshot& snapshot) {
  std::vector<bench::BenchRecord> records;
  records.reserve(snapshot.metrics.size());
  for (const Metric& m : snapshot.metrics)
    records.push_back({m.group, render_label_set(m), m.name, m.value});
  std::ostringstream os;
  bench::write_bench_json(os, "monitor", {{"generator", "xorec-monitor"}}, records);
  return os.str();
}

}  // namespace xorec::obs
