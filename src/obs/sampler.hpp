// Sampler: the time-series half of the observability layer. A background
// thread collects a MetricSnapshot from the registry every `interval` and
// keeps the last `capacity` of them in a fixed ring, so rates are reported
// over a sliding window instead of the lifetime-average uptime division
// ServiceStats is stuck with: a service that idled for an hour and is now
// saturated shows its *current* throughput and queue depth, not the
// hour-diluted mean.
//
// The sampler registers itself as a source on the registry it samples, so
// every scrape also carries the windowed derivations:
//
//   xorec_window_seconds / xorec_window_samples        the window itself
//   xorec_shard_queue_depth_window_mean{shard}         mean TaskQueue depth
//   xorec_shard_throughput_window_gBps{shard}          d(bytes)/dt / 1e9
//   xorec_plan_cache_hit_ratio_window                  d(hits)/d(lookups)
//
// drive_placement(service) closes the loop: it installs a shard-load
// provider on the CodecService so NEW pools are pinned to the shard with
// the lowest measured window-mean queue depth instead of round-robin.
// Lock order is deadlock-safe by construction: the provider only reads the
// ring (ring mutex), the sampling thread only takes the ring mutex AFTER
// registry.collect() returns (which is what takes the service's stats
// lock) — the two mutexes are never held together in either order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace xorec {
class CodecService;
}

namespace xorec::obs {

struct SamplerOptions {
  /// Tick period of the background thread (sample_now() works regardless).
  std::chrono::milliseconds interval{100};
  /// Ring capacity: the window spans at most `capacity * interval`.
  size_t capacity = 64;
};

class Sampler {
 public:
  /// Registers the windowed metrics above as a source on `registry`.
  /// The sampler must outlive scrapes of the registry.
  explicit Sampler(MetricsRegistry& registry, SamplerOptions opt = {});
  /// stop()s the thread and detaches any drive_placement hook.
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start();
  void stop();

  /// Collect one snapshot into the ring immediately (also what the thread
  /// does per tick) — how tests advance the window deterministically.
  void sample_now();

  size_t samples() const;
  /// Timespan covered by the ring (newest.at - oldest.at), seconds.
  double window_seconds() const;

  /// d(value)/dt of a (counter) metric across the window; 0 with fewer
  /// than two samples, with no elapsed time, or when the metric is absent.
  double rate_per_second(std::string_view name,
                         const std::vector<std::pair<std::string, std::string>>& labels =
                             {}) const;
  /// Mean of a (gauge) metric over every ring sample that carries it.
  double window_mean(std::string_view name,
                     const std::vector<std::pair<std::string, std::string>>& labels =
                         {}) const;

  /// Window-mean xorec_shard_queue_depth per shard, indexed by shard id —
  /// the load signal drive_placement feeds to CodecService. Empty until
  /// the first sample lands.
  std::vector<double> shard_depth_means() const;

  /// Install this sampler as `service`'s shard-load provider: new pools go
  /// to the least-loaded shard by measured window-mean queue depth (ties
  /// and an empty ring fall back to the service's round-robin). Detached
  /// automatically when the sampler is destroyed.
  void drive_placement(CodecService& service);

 private:
  void append_window_metrics(std::vector<Metric>& out) const;
  void run();

  MetricsRegistry& registry_;
  SamplerOptions opt_;

  mutable std::mutex mu_;  // guards ring_
  std::deque<MetricSnapshot> ring_;

  std::mutex tmu_;  // guards running_/stop_ + thread lifecycle
  std::condition_variable tcv_;
  std::thread thread_;
  bool stop_ = false;
  bool running_ = false;

  std::mutex dmu_;  // guards driven_
  std::vector<CodecService*> driven_;
};

}  // namespace xorec::obs
