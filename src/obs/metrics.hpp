// Live observability: one flattened, named view over every counter surface
// in the process — the scrapable half of the ROADMAP's "operable service"
// item. XORing Elephants makes its repair-traffic argument from *measured
// production counters*; this is where ours become measurable.
//
// Three pieces, composed by the caller (examples/net_server.cpp shows the
// full wiring):
//
//   obs::MetricsRegistry registry;          // what to measure
//   registry.attach(service);               // ServiceStats + plan cache + jit
//   registry.attach(net_server);            // NetServerStats
//
//   obs::Sampler sampler(registry);         // time series (obs/sampler.hpp)
//   sampler.drive_placement(service);       // depth-driven shard placement
//   sampler.start();
//
//   obs::MonitorServer monitor(registry);   // obs/monitor.hpp
//   monitor.start();                        // GET /metrics, /stats.json
//
// A MetricSnapshot is a flat vector of (name, labels, value): Prometheus'
// data model, chosen so the text exposition renders mechanically and the
// sampler can diff any counter across time without per-source code. Sources
// are read at collect() time through their own thread-safe stats()
// snapshots — attaching a source never adds a lock to a serving path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xorec {
class CodecService;
}
namespace xorec::net {
class NetServer;
}

namespace xorec::obs {

enum class MetricKind { Counter, Gauge };

/// One flattened sample: a fully-qualified Prometheus-style name
/// (counters end in `_total`), an optional label set, and a value.
/// `group` tags the owning subsystem ("shard", "pool", "plan_cache", "jit",
/// "net", "window") — the record family of the /stats.json document.
struct Metric {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  MetricKind kind = MetricKind::Gauge;
  const char* group = "";
  const char* help = "";
  double value = 0;
};

struct MetricSnapshot {
  std::chrono::steady_clock::time_point at{};
  std::vector<Metric> metrics;

  /// The metric with this exact name + label set, or nullptr.
  const Metric* find(std::string_view name,
                     const std::vector<std::pair<std::string, std::string>>& labels = {})
      const;
  double value_or(std::string_view name,
                  const std::vector<std::pair<std::string, std::string>>& labels = {},
                  double fallback = 0) const;
};

/// Flattens every attached counter surface into one MetricSnapshot on
/// demand. Sources must stay alive while attached (the registry holds
/// references, not ownership). Thread-safe: attach and collect may race.
class MetricsRegistry {
 public:
  using Source = std::function<void(std::vector<Metric>&)>;

  /// ServiceStats: shards (workers/jobs/depth/bytes/throughput/pools),
  /// pools (ops, repair traffic, net traffic, exec info), the plan-cache
  /// view incl. per-level multilevel miss totals and the warm window, and
  /// the process-wide jit artifact-cache counters.
  void attach(const CodecService& service);
  /// NetServerStats: connections, requests/responses/errors, backpressure,
  /// byte counters, writev gather counters, UDP group outcomes.
  void attach(const net::NetServer& server);
  /// Arbitrary extra source (appends metrics; must be thread-safe).
  void add_source(Source source);

  MetricSnapshot collect() const;

 private:
  mutable std::mutex mu_;
  std::vector<Source> sources_;
};

/// Prometheus text exposition (format version 0.0.4): families grouped in
/// first-occurrence order, one `# HELP`/`# TYPE` pair per family, label
/// values escaped. Whole-number values print without a decimal point so
/// byte-identical states render byte-identically.
std::string render_prometheus(const MetricSnapshot& snapshot);

/// The /stats.json document: the bench_json.hpp record schema
/// ({name, config, metric, value} rows), so the same tooling that consumes
/// BENCH_*.json artifacts consumes monitor snapshots. `name` is the metric
/// group, `config` the rendered label set ("-" when unlabelled), `metric`
/// the metric name.
std::string render_stats_json(const MetricSnapshot& snapshot);

/// "shard=0,pool=rs(6,4)" — the /stats.json config-cell rendering of a
/// metric's label set; "-" for an empty set.
std::string render_label_set(const Metric& metric);

}  // namespace xorec::obs
