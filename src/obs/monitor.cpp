#include "obs/monitor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace xorec::obs {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// 4xx responses are complete static literals: a hostile request costs the
// fixed read buffer and a pointer to one of these — no allocation.
constexpr std::string_view kBadRequest =
    "HTTP/1.0 400 Bad Request\r\n"
    "Content-Type: text/plain; charset=utf-8\r\n"
    "Content-Length: 12\r\n"
    "Connection: close\r\n"
    "\r\n"
    "bad request\n";
constexpr std::string_view kNotFound =
    "HTTP/1.0 404 Not Found\r\n"
    "Content-Type: text/plain; charset=utf-8\r\n"
    "Content-Length: 37\r\n"
    "Connection: close\r\n"
    "\r\n"
    "not found; try /metrics, /stats.json\n";
constexpr std::string_view kMethodNotAllowed =
    "HTTP/1.0 405 Method Not Allowed\r\n"
    "Content-Type: text/plain; charset=utf-8\r\n"
    "Allow: GET\r\n"
    "Content-Length: 9\r\n"
    "Connection: close\r\n"
    "\r\n"
    "GET only\n";
constexpr std::string_view kHeadersTooLarge =
    "HTTP/1.0 431 Request Header Fields Too Large\r\n"
    "Content-Type: text/plain; charset=utf-8\r\n"
    "Content-Length: 18\r\n"
    "Connection: close\r\n"
    "\r\n"
    "request too large\n";

std::string ok_response(std::string_view content_type, std::string body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 200 OK\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

struct MonitorServer::Impl {
  /// Request size never drives allocation: reads land in this fixed buffer
  /// and anything that overflows it un-terminated is a 431.
  static constexpr size_t kRequestBufSize = 1024;

  struct Conn {
    int fd = -1;
    char buf[kRequestBufSize];
    size_t got = 0;
    bool responding = false;   // header block complete, response queued
    std::string owned_out;     // 200 body (empty for static 4xx)
    std::string_view out;      // what's left to write (views owned_out or a literal)
  };

  const MetricsRegistry& registry;
  MonitorOptions opt;
  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;
  uint16_t bound_port = 0;

  std::thread loop_thread;
  std::atomic<bool> running{false};
  bool started = false;

  std::unordered_map<int, std::unique_ptr<Conn>> conns;  // loop-thread only

  std::atomic<size_t> connections_accepted{0}, requests{0}, bad_requests{0};

  Impl(const MetricsRegistry& reg, MonitorOptions o) : registry(reg), opt(std::move(o)) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw std::runtime_error("MonitorServer: socket() failed");
    const int one = 1;
    (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    if (::inet_pton(AF_INET, opt.host.c_str(), &sa.sin_addr) != 1)
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(opt.port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(listen_fd, 16) != 0) {
      ::close(listen_fd);
      throw std::runtime_error("MonitorServer: bind/listen failed");
    }
    set_nonblocking(listen_fd);
    socklen_t len = sizeof(sa);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&sa), &len);
    bound_port = ntohs(sa.sin_port);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(listen_fd);
      throw std::runtime_error("MonitorServer: pipe() failed");
    }
    wake_r = pipe_fds[0];
    wake_w = pipe_fds[1];
    set_nonblocking(wake_r);
    set_nonblocking(wake_w);
  }

  ~Impl() {
    stop();
    for (int fd : {listen_fd, wake_r, wake_w})
      if (fd >= 0) ::close(fd);
  }

  void start() {
    if (started) return;
    started = true;
    running.store(true);
    loop_thread = std::thread([this] { loop_main(); });
  }

  void stop() {
    if (!started) return;
    running.store(false);
    const uint8_t b = 1;
    (void)!::write(wake_w, &b, 1);
    if (loop_thread.joinable()) loop_thread.join();
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    started = false;
  }

  void loop_main() {
    std::vector<pollfd> fds;
    std::vector<int> conn_fds;
    while (running.load()) {
      fds.clear();
      conn_fds.clear();
      fds.push_back({wake_r, POLLIN, 0});
      fds.push_back({listen_fd,
                     static_cast<short>(conns.size() < opt.max_connections ? POLLIN : 0),
                     0});
      for (auto& [fd, conn] : conns) {
        fds.push_back({fd, static_cast<short>(conn->responding ? POLLOUT : POLLIN), 0});
        conn_fds.push_back(fd);
      }
      ::poll(fds.data(), fds.size(), 100);
      if (!running.load()) break;

      if (fds[0].revents & POLLIN) {
        uint8_t buf[64];
        while (::read(wake_r, buf, sizeof(buf)) > 0) {
        }
      }
      if (fds[1].revents & POLLIN) handle_accept();
      for (size_t i = 0; i < conn_fds.size(); ++i) {
        const pollfd& p = fds[2 + i];
        auto it = conns.find(conn_fds[i]);
        if (it == conns.end()) continue;
        Conn* c = it->second.get();
        if (p.revents & (POLLERR | POLLHUP)) {
          close_conn(c->fd);
          continue;
        }
        if (p.revents & POLLOUT) {
          if (!handle_write(*c)) continue;
        }
        if (p.revents & POLLIN) handle_read(*c);
      }
    }
  }

  void handle_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      if (conns.size() >= opt.max_connections) {
        ::close(fd);
        return;
      }
      set_nonblocking(fd);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conns.emplace(fd, std::move(conn));
      connections_accepted.fetch_add(1);
    }
  }

  void close_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    ::close(fd);
    conns.erase(it);
  }

  void handle_read(Conn& c) {
    for (;;) {
      if (c.got == kRequestBufSize) {
        respond_static(c, kHeadersTooLarge);
        return;
      }
      const ssize_t n = ::read(c.fd, c.buf + c.got, kRequestBufSize - c.got);
      if (n == 0) {
        close_conn(c.fd);
        return;
      }
      if (n < 0) return;  // EAGAIN
      c.got += static_cast<size_t>(n);
      const std::string_view sofar(c.buf, c.got);
      // HTTP/1.0, no request bodies: the header block's blank line ends the
      // request. Accept bare-LF termination from sloppy clients.
      if (sofar.find("\r\n\r\n") != std::string_view::npos ||
          sofar.find("\n\n") != std::string_view::npos) {
        respond(c, sofar);
        return;
      }
      // A stray NUL or control byte before the line end can't begin a valid
      // request line — reject without waiting for a terminator.
      const size_t line_end = sofar.find_first_of("\r\n");
      const std::string_view line = sofar.substr(0, line_end);
      for (char ch : line) {
        if (static_cast<unsigned char>(ch) < 0x20 || ch == 0x7f) {
          respond_static(c, kBadRequest);
          return;
        }
      }
    }
  }

  void respond(Conn& c, std::string_view request) {
    // Request line: METHOD SP PATH SP HTTP/x.y
    const size_t line_end = request.find_first_of("\r\n");
    const std::string_view line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0) {
      respond_static(c, kBadRequest);
      return;
    }
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1 ||
        line.substr(sp2 + 1).rfind("HTTP/", 0) != 0) {
      respond_static(c, kBadRequest);
      return;
    }
    const std::string_view method = line.substr(0, sp1);
    std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (path.empty() || path[0] != '/') {
      respond_static(c, kBadRequest);
      return;
    }
    if (method != "GET") {
      respond_static(c, kMethodNotAllowed);
      return;
    }
    if (const size_t q = path.find('?'); q != std::string_view::npos)
      path = path.substr(0, q);

    if (path == "/metrics") {
      requests.fetch_add(1);
      c.owned_out = ok_response("text/plain; version=0.0.4; charset=utf-8",
                                render_prometheus(registry.collect()));
    } else if (path == "/stats.json") {
      requests.fetch_add(1);
      c.owned_out = ok_response("application/json", render_stats_json(registry.collect()));
    } else {
      respond_static(c, kNotFound);
      return;
    }
    c.out = c.owned_out;
    c.responding = true;
    handle_write(c);
  }

  void respond_static(Conn& c, std::string_view response) {
    bad_requests.fetch_add(1);
    c.out = response;
    c.responding = true;
    handle_write(c);
  }

  /// Returns false when the connection was closed.
  bool handle_write(Conn& c) {
    while (!c.out.empty()) {
      const ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
      if (n < 0) return true;  // EAGAIN; poll will call back
      c.out.remove_prefix(static_cast<size_t>(n));
    }
    close_conn(c.fd);  // HTTP/1.0: one response, then close
    return false;
  }
};

MonitorServer::MonitorServer(const MetricsRegistry& registry, MonitorOptions opt)
    : impl_(std::make_unique<Impl>(registry, std::move(opt))) {}

MonitorServer::~MonitorServer() = default;

void MonitorServer::start() { impl_->start(); }
void MonitorServer::stop() { impl_->stop(); }
uint16_t MonitorServer::port() const { return impl_->bound_port; }

MonitorStats MonitorServer::stats() const {
  MonitorStats s;
  s.connections_accepted = impl_->connections_accepted.load();
  s.requests = impl_->requests.load();
  s.bad_requests = impl_->bad_requests.load();
  return s;
}

}  // namespace xorec::obs
