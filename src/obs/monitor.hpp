// MonitorServer: the scrape endpoint — a minimal HTTP/1.0 server on its own
// poll() loop (same socket idioms as net/server.cpp: bind at construction so
// an ephemeral port is known before start(), nonblocking fds, a wake pipe to
// interrupt the poll on stop()).
//
//   GET /metrics      Prometheus text exposition (render_prometheus)
//   GET /stats.json   bench_json.hpp record schema (render_stats_json)
//
// Both render a fresh MetricsRegistry::collect() per request; windowed rates
// ride along automatically when a Sampler is registered on the registry.
//
// Parsing is deliberately hostile-input-shaped, same discipline as
// net/frame.cpp: each connection reads into a FIXED 1 KiB buffer, so request
// size never drives allocation — a request that fills the buffer without
// terminating its header block is answered 431 from a static literal and
// closed, as are malformed lines (400), non-GET methods (405) and unknown
// paths (404). Only a well-formed GET of a known path allocates (the
// rendered body). Connections are HTTP/1.0 close-after-response.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace xorec::obs {

struct MonitorOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral (read back via port())
  size_t max_connections = 32;
};

struct MonitorStats {
  size_t connections_accepted = 0;
  size_t requests = 0;      // well-formed GETs of known paths (2xx answered)
  size_t bad_requests = 0;  // 4xx answered (malformed/oversized/unknown)
};

class MonitorServer {
 public:
  /// Binds immediately (so port() is known); serves nothing until start().
  /// The registry must outlive the server. Throws std::runtime_error on
  /// bind failure.
  explicit MonitorServer(const MetricsRegistry& registry, MonitorOptions opt = {});
  ~MonitorServer();  // stop()s if still running

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  void start();
  void stop();

  uint16_t port() const;
  MonitorStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xorec::obs
