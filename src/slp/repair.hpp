// RePair grammar compression for SLP⊕ (§4.3) and its cancellation-aware
// extension XorRePair (§4.4).
//
// Input: a *flat* SLP (every instruction's arguments are constants — the
// shape `from_bitmatrix` produces). Output: a binary SLP⊕ whose instructions
// are the generated temporals t1, t2, ... in generation order; every original
// variable has been compressed down to an alias of a temporal (or of a
// constant, which materializes as a unary copy).
//
// Faithfulness notes (see EXPERIMENTS.md):
//  - pair choice: most frequent pair across the live original definitions,
//    ties broken by the lexicographic ⊏ over ≺ (temporals-by-generation
//    before constants-by-index), exactly as §4.3;
//  - Pair(x, y) reuses an existing temporal with definition x ⊕ y instead of
//    minting a duplicate, and applies ⊕-cancellation when the temporal is
//    already present in a definition (both no-ops for plain matrix inputs);
//  - Rebuild(v) (§4.4) greedily XORs temporal *values* into the remainder,
//    never picking a temporal already in S (re-picking would silently cancel);
//  - a final dead-code sweep drops temporals that ended up unreferenced
//    (possible after Rebuild rewrites definitions).
#pragma once

#include "slp/program.hpp"

namespace xorec::slp {

struct CompressOptions {
  /// false = plain RePair; true = XorRePair (RePair + Rebuild).
  bool use_rebuild = false;
};

Program repair_compress(const Program& flat, const CompressOptions& opt = {});

/// Convenience: repair_compress with Rebuild enabled.
Program xor_repair_compress(const Program& flat);

}  // namespace xorec::slp
