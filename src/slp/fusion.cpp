#include "slp/fusion.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace xorec::slp {

Program fuse(const Program& p) {
  if (!p.is_ssa()) throw std::invalid_argument("fuse: program must be SSA");

  // Working copy of definitions, indexed by variable id.
  std::vector<std::vector<Term>> def(p.num_vars);
  std::vector<bool> defined(p.num_vars, false);
  std::vector<uint32_t> order;  // definition order (var ids)
  order.reserve(p.body.size());
  for (const Instruction& ins : p.body) {
    def[ins.target] = ins.args;
    defined[ins.target] = true;
    order.push_back(ins.target);
  }

  std::vector<uint32_t> use_count(p.num_vars, 0);
  for (const Instruction& ins : p.body)
    for (const Term& t : ins.args)
      if (t.is_var()) ++use_count[t.id];

  std::vector<bool> is_output(p.num_vars, false);
  for (uint32_t o : p.outputs) is_output[o] = true;

  // Position of each var's definition in `order`, to find hosts quickly.
  std::vector<uint32_t> def_pos(p.num_vars, UINT32_MAX);
  for (uint32_t i = 0; i < order.size(); ++i) def_pos[order[i]] = i;

  std::vector<bool> erased(p.num_vars, false);

  // A variable defined after v that references v; SSA order means scanning
  // forward from v's definition finds the unique user when use_count == 1.
  auto find_single_user = [&](uint32_t v) -> uint32_t {
    for (uint32_t i = def_pos[v] + 1; i < order.size(); ++i) {
      const uint32_t w = order[i];
      if (erased[w]) continue;
      if (std::find(def[w].begin(), def[w].end(), Term::var(v)) != def[w].end()) return w;
    }
    return UINT32_MAX;
  };

  // Worklist of fusion candidates: used exactly once and not returned.
  std::vector<uint32_t> work;
  for (uint32_t v = 0; v < p.num_vars; ++v)
    if (defined[v] && use_count[v] == 1 && !is_output[v]) work.push_back(v);

  while (!work.empty()) {
    const uint32_t v = work.back();
    work.pop_back();
    if (erased[v] || use_count[v] != 1 || is_output[v]) continue;
    const uint32_t host = find_single_user(v);
    assert(host != UINT32_MAX);

    // Splice def[v] into def[host] at v's position, cancelling duplicates.
    std::vector<Term>& h = def[host];
    auto pos = std::find(h.begin(), h.end(), Term::var(v));
    assert(pos != h.end());
    size_t insert_at = static_cast<size_t>(pos - h.begin());
    h.erase(pos);
    for (const Term& t : def[v]) {
      auto dup = std::find(h.begin(), h.end(), t);
      if (dup != h.end()) {
        // t ⊕ t = 0: drop both occurrences.
        const size_t dup_idx = static_cast<size_t>(dup - h.begin());
        h.erase(dup);
        if (dup_idx < insert_at) --insert_at;
        if (t.is_var()) {
          use_count[t.id] -= 2;  // both the inlined and the host use vanish
          if (use_count[t.id] == 1 && !is_output[t.id]) work.push_back(t.id);
        }
      } else {
        h.insert(h.begin() + static_cast<long>(insert_at), t);
        ++insert_at;
      }
    }
    if (h.empty())
      throw std::logic_error("fuse: instruction cancelled to zero (inconsistent program)");
    erased[v] = true;
    use_count[v] = 0;
  }

  // Cancellations can leave unreferenced definitions behind: sweep liveness
  // from the outputs before assembling.
  std::vector<bool> live(p.num_vars, false);
  std::vector<uint32_t> stack;
  for (uint32_t o : p.outputs)
    if (!live[o]) {
      live[o] = true;
      stack.push_back(o);
    }
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    for (const Term& t : def[v]) {
      if (t.is_var() && !live[t.id]) {
        live[t.id] = true;
        stack.push_back(t.id);
      }
    }
  }

  Program out;
  out.num_consts = p.num_consts;
  out.name = p.name.empty() ? p.name : p.name + "+fuse";

  std::vector<uint32_t> new_id(p.num_vars, UINT32_MAX);
  for (uint32_t v : order) {
    if (erased[v] || !live[v]) continue;
    new_id[v] = out.num_vars++;
  }
  for (uint32_t v : order) {
    if (erased[v] || !live[v]) continue;
    Instruction ins;
    ins.target = new_id[v];
    for (const Term& t : def[v])
      ins.args.push_back(t.is_var() ? Term::var(new_id[t.id]) : t);
    out.body.push_back(std::move(ins));
  }
  for (uint32_t o : p.outputs) {
    assert(new_id[o] != UINT32_MAX);
    out.outputs.push_back(new_id[o]);
  }
  return out;
}

}  // namespace xorec::slp
