// DFS (postorder) scheduling heuristic (§6.6).
//
// Visits the computation graph's root nodes in ≺ order, children in ≺ order
// (variables before constants), and emits one instruction per node in
// postorder. Pebbles (physical buffers) are reused as soon as a non-goal
// value is dead — uses consumed by the instruction being emitted count as
// consumed, so an instruction may reuse one of its own argument pebbles
// in place.
#pragma once

#include "slp/compgraph.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

/// Returns the pebble program (non-SSA; NVar == pebbles used).
Program schedule_dfs(const Program& fused_ssa);
Program schedule_dfs(const CompGraph& g, const std::string& name = {});

}  // namespace xorec::slp
