// The SLP program representation (§4.1, §5.1).
//
// One `Program` type covers every stage of the paper's pipeline:
//  - flat matrix form: one n-ary instruction per output row (the "Base" SLP);
//  - binary SLP⊕ after (Xor)RePair: every instruction has 2 args;
//  - fused SLP®⊕: variadic instructions, SSA;
//  - scheduled pebble programs: variadic, variables (pebbles) reassigned.
//
// Instructions execute in order; an instruction XORs its argument values
// (values *before* this instruction, so in-place updates are well-defined)
// and stores into the target variable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitmatrix/bitmatrix.hpp"
#include "slp/term.hpp"

namespace xorec::slp {

struct Instruction {
  uint32_t target = 0;      // variable id
  std::vector<Term> args;   // ≥ 1 terms
};

struct Program {
  uint32_t num_consts = 0;
  uint32_t num_vars = 0;
  std::vector<Instruction> body;
  std::vector<uint32_t> outputs;  // variable ids, in return order
  std::string name;

  /// Throws std::invalid_argument when ids are out of range, an argument
  /// variable is used before any assignment, an instruction has no args, or
  /// an output variable is never assigned.
  void validate() const;

  /// True when every variable is assigned exactly once (pre-scheduling form).
  bool is_ssa() const;

  /// True when instruction args are constants only (fresh-from-matrix form).
  bool is_flat() const;

  /// Rewrites every k-ary instruction (k > 2) into the accumulate chain
  ///   v <- t1 ⊕ t2 ; v <- v ⊕ t3 ; ... ; v <- v ⊕ tk
  /// i.e. the execution form of the paper's "Base"/compressed stages where
  /// each XOR costs 3 memory accesses (§7.5 accounting).
  Program binary_expanded() const;

  std::string to_string() const;
};

/// Flat SLP of a bitmatrix (§2): output r <- XOR of the constants whose bit
/// is set in row r. Rows with a single 1 become unary copy instructions;
/// zero rows are rejected (a coding matrix never produces the zero strip).
Program from_bitmatrix(const bitmatrix::BitMatrix& m, std::string name = {});

}  // namespace xorec::slp
