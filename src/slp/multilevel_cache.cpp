#include "slp/multilevel_cache.hpp"

#include <algorithm>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "slp/cache_model.hpp"

namespace xorec::slp {

namespace {

/// Plain LRU list with O(1) membership.
class LruLevel {
 public:
  explicit LruLevel(size_t cap) : cap_(cap) {}

  bool contains(uint64_t k) const { return pos_.count(k) > 0; }

  /// Insert/refresh k; returns the evicted key if the level overflowed.
  std::optional<uint64_t> touch(uint64_t k) {
    auto it = pos_.find(k);
    if (it != pos_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return std::nullopt;
    }
    order_.push_front(k);
    pos_[k] = order_.begin();
    if (order_.size() > cap_) {
      const uint64_t victim = order_.back();
      order_.pop_back();
      pos_.erase(victim);
      return victim;
    }
    return std::nullopt;
  }

 private:
  size_t cap_;
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos_;
};

}  // namespace

MultilevelResult simulate_multilevel(const Program& p,
                                     const std::vector<size_t>& capacities,
                                     ExecForm form,
                                     const std::vector<double>& latencies) {
  if (capacities.empty()) throw std::invalid_argument("simulate_multilevel: no levels");
  for (size_t i = 1; i < capacities.size(); ++i)
    if (capacities[i] <= capacities[i - 1])
      throw std::invalid_argument("simulate_multilevel: capacities must increase");
  if (!latencies.empty() && latencies.size() != capacities.size() + 1)
    throw std::invalid_argument("simulate_multilevel: need one latency per level + memory");

  MultilevelResult res;
  res.levels.assign(capacities.size(), {});
  std::vector<LruLevel> levels;
  for (size_t c : capacities) levels.emplace_back(c);

  for (const Block& b : touch_sequence(p, form)) {
    const uint64_t k = b.key();
    size_t hit_level = levels.size();  // == miss everywhere
    for (size_t i = 0; i < levels.size(); ++i) {
      if (levels[i].contains(k)) {
        hit_level = i;
        break;
      }
    }
    if (hit_level == levels.size()) ++res.memory_loads;
    for (size_t i = 0; i < levels.size(); ++i) {
      if (i < hit_level) ++res.levels[i].misses;
      if (i == hit_level) ++res.levels[i].hits;
    }
    // Inclusion: the block enters every level at or above the hit point,
    // deepest first so cascaded evictions land below.
    for (size_t i = std::min(hit_level, levels.size() - 1);; --i) {
      const auto victim = levels[i].touch(k);
      if (victim && i + 1 < levels.size()) levels[i + 1].touch(*victim);
      if (i == 0) break;
    }
  }

  if (!latencies.empty()) {
    double cost = 0;
    // A hit at level i costs latency[i]; a full miss costs memory latency.
    for (size_t i = 0; i < res.levels.size(); ++i)
      cost += static_cast<double>(res.levels[i].hits) * latencies[i];
    cost += static_cast<double>(res.memory_loads) * latencies.back();
    res.weighted_cost = cost;
  } else {
    res.weighted_cost = static_cast<double>(res.memory_loads);
  }
  return res;
}

}  // namespace xorec::slp
