#include "slp/multilevel_cache.hpp"

#include <stdexcept>

#include "slp/cache_model.hpp"

namespace xorec::slp {

MultilevelResult simulate_multilevel(const Program& p,
                                     const std::vector<size_t>& capacities,
                                     ExecForm form,
                                     const std::vector<double>& latencies) {
  if (capacities.empty()) throw std::invalid_argument("simulate_multilevel: no levels");
  for (size_t i = 1; i < capacities.size(); ++i)
    if (capacities[i] <= capacities[i - 1])
      throw std::invalid_argument("simulate_multilevel: capacities must increase");
  if (!latencies.empty() && latencies.size() != capacities.size() + 1)
    throw std::invalid_argument("simulate_multilevel: need one latency per level + memory");

  MultilevelResult res;
  res.levels.assign(capacities.size(), {});
  InclusiveLruHierarchy cache(capacities);

  for (const Block& b : touch_sequence(p, form)) {
    const size_t hit_level = cache.touch(b.key());
    if (hit_level == cache.level_count()) ++res.memory_loads;
    for (size_t i = 0; i < cache.level_count(); ++i) {
      if (i < hit_level) ++res.levels[i].misses;
      if (i == hit_level) ++res.levels[i].hits;
    }
  }

  if (!latencies.empty()) {
    double cost = 0;
    // A hit at level i costs latency[i]; a full miss costs memory latency.
    for (size_t i = 0; i < res.levels.size(); ++i)
      cost += static_cast<double>(res.levels[i].hits) * latencies[i];
    cost += static_cast<double>(res.memory_loads) * latencies.back();
    res.weighted_cost = cost;
  } else {
    res.weighted_cost = static_cast<double>(res.memory_loads);
  }
  return res;
}

}  // namespace xorec::slp
