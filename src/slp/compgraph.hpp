// Computation graphs (§6.4): the DAG of value dependencies of a fused SSA
// SLP. Inner nodes are instructions (one per variable), leaves are constants,
// goal nodes are the returned values. Arena for the pebble game.
#pragma once

#include <cstdint>
#include <vector>

#include "slp/program.hpp"

namespace xorec::slp {

struct CompGraph {
  struct Node {
    std::vector<Term> children;  // Term::var ids are *node indices*
    bool is_goal = false;
    uint32_t n_parents = 0;  // uses of this node's value by other nodes
  };

  std::vector<Node> nodes;      // topologically ordered (definition order)
  std::vector<uint32_t> goals;  // node indices in return order
  uint32_t num_consts = 0;
};

/// Requires SSA (fused-pipeline position); node i corresponds to body[i].
CompGraph build_compgraph(const Program& p);

}  // namespace xorec::slp
