#include "slp/semantics.hpp"

namespace xorec::slp {

std::vector<Value> evaluate_vars(const Program& p) {
  std::vector<Value> vals(p.num_vars, Value(p.num_consts));
  for (const Instruction& ins : p.body) {
    Value acc(p.num_consts);
    for (const Term& t : ins.args) {
      if (t.is_const()) {
        acc.flip(t.id);
      } else {
        acc ^= vals[t.id];
      }
    }
    vals[ins.target] = std::move(acc);
  }
  return vals;
}

std::vector<Value> denotation(const Program& p) {
  const std::vector<Value> vals = evaluate_vars(p);
  std::vector<Value> out;
  out.reserve(p.outputs.size());
  for (uint32_t o : p.outputs) out.push_back(vals[o]);
  return out;
}

bool equivalent(const Program& p, const Program& q) {
  if (p.num_consts != q.num_consts) return false;
  return denotation(p) == denotation(q);
}

bitmatrix::BitMatrix denotation_matrix(const Program& p) {
  const std::vector<Value> out = denotation(p);
  bitmatrix::BitMatrix m(out.size(), p.num_consts);
  for (size_t i = 0; i < out.size(); ++i) m.row(i) = out[i];
  return m;
}

}  // namespace xorec::slp
