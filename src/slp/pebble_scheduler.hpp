// The bottom-up pebbling loop shared by the cache-aware schedulers (§6.6
// greedy and the §8 multilevel extension). The loop is policy-independent:
// it emits each computation-graph node exactly once after its children,
// reuses only dead non-goal pebbles, and preserves semantics regardless of
// which node or pebble the cache policy prefers.
//
// Cache policy concept:
//   double hit_value(const Term& block) const;
//     0 when the block is absent; > 0 when resident, higher = cheaper to
//     access (a single-level cache returns 1; a multilevel hierarchy grades
//     by the level the block would hit).
//   void touch(const Term& block);
//     record an access: load the block if absent, refresh it if present.
#pragma once

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <vector>

#include "slp/compgraph.hpp"
#include "slp/program.hpp"

namespace xorec::slp::detail {

template <typename CachePolicy>
Program schedule_pebble(const CompGraph& g, CachePolicy& cache, std::string name) {
  const uint32_t n_nodes = static_cast<uint32_t>(g.nodes.size());

  std::vector<uint32_t> pebble_of(n_nodes, UINT32_MAX);
  std::vector<uint32_t> uses_left(n_nodes);
  std::vector<uint32_t> vkids_left(n_nodes, 0);  // uncomputed variable children
  for (uint32_t i = 0; i < n_nodes; ++i) {
    uses_left[i] = g.nodes[i].n_parents;
    for (const Term& c : g.nodes[i].children)
      if (c.is_var()) ++vkids_left[i];
  }

  std::set<uint32_t> ready;  // computable, uncomputed nodes (ordered = ≺)
  for (uint32_t i = 0; i < n_nodes; ++i)
    if (vkids_left[i] == 0) ready.insert(i);

  std::set<uint32_t> free_pebbles;  // dead non-goal pebbles, ≺-ordered
  uint32_t next_pebble = 0;

  auto block_of = [&](const Term& child) {
    return child.is_const() ? child : Term::var(pebble_of[child.id]);
  };

  Program out;
  out.num_consts = g.num_consts;
  out.name = std::move(name);

  size_t emitted = 0;
  while (emitted < n_nodes) {
    // Pick the ready node whose children are cheapest to access: highest
    // mean hit value (the greedy |H| / |C| ratio, graded by level when the
    // policy is multilevel). Strict > keeps the ≺ tie-break of set order.
    assert(!ready.empty());
    uint32_t best = UINT32_MAX;
    double best_score = -1.0;
    for (uint32_t n : ready) {
      const auto& children = g.nodes[n].children;
      double value = 0.0;
      for (const Term& c : children) value += cache.hit_value(block_of(c));
      const double score =
          children.empty() ? 0.0 : value / static_cast<double>(children.size());
      if (score > best_score) {
        best_score = score;
        best = n;
      }
    }
    ready.erase(best);
    const CompGraph::Node& node = g.nodes[best];

    // Argument order: most-resident children first, ≺ within equal classes.
    // Values are sampled before any touch mutates the cache.
    std::vector<std::pair<double, Term>> kids;
    kids.reserve(node.children.size());
    for (const Term& c : node.children) kids.emplace_back(cache.hit_value(block_of(c)), c);
    std::stable_sort(kids.begin(), kids.end(), [&](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return block_of(a.second) < block_of(b.second);
    });

    Instruction ins;
    for (const auto& [value, c] : kids) {
      cache.touch(block_of(c));
      ins.args.push_back(block_of(c));
    }

    // Consume uses; dead non-goal pebbles become movable.
    for (const Term& c : node.children) {
      if (!c.is_var()) continue;
      assert(uses_left[c.id] > 0);
      if (--uses_left[c.id] == 0 && !g.nodes[c.id].is_goal)
        free_pebbles.insert(pebble_of[c.id]);
    }

    // Target: the most-resident movable pebble > any movable pebble > a
    // fresh pebble (≺ breaks value ties via iteration order).
    uint32_t target = UINT32_MAX;
    double target_value = 0.0;
    for (uint32_t p : free_pebbles) {
      const double v = cache.hit_value(Term::var(p));
      if (target == UINT32_MAX || v > target_value) {
        target = p;
        target_value = v;
      }
    }
    if (target != UINT32_MAX) {
      free_pebbles.erase(target);
    } else {
      target = next_pebble++;
    }
    cache.touch(Term::var(target));

    pebble_of[best] = target;
    ins.target = target;
    out.body.push_back(std::move(ins));
    ++emitted;

    // Newly computable parents. (Parents are found by scanning: graphs are
    // small and this keeps the node structure lean.)
    for (uint32_t i = 0; i < n_nodes; ++i) {
      if (pebble_of[i] != UINT32_MAX || vkids_left[i] == 0) continue;
      for (const Term& c : g.nodes[i].children) {
        if (c.is_var() && c.id == best) {
          if (--vkids_left[i] == 0) ready.insert(i);
        }
      }
    }
  }

  out.num_vars = next_pebble;
  for (uint32_t goal : g.goals) out.outputs.push_back(pebble_of[goal]);
  return out;
}

}  // namespace xorec::slp::detail
