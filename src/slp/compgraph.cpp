#include "slp/compgraph.hpp"

#include <stdexcept>

namespace xorec::slp {

CompGraph build_compgraph(const Program& p) {
  if (!p.is_ssa()) throw std::invalid_argument("build_compgraph: program must be SSA");
  CompGraph g;
  g.num_consts = p.num_consts;
  g.nodes.resize(p.body.size());

  std::vector<uint32_t> node_of_var(p.num_vars, UINT32_MAX);
  for (uint32_t i = 0; i < p.body.size(); ++i) node_of_var[p.body[i].target] = i;

  for (uint32_t i = 0; i < p.body.size(); ++i) {
    CompGraph::Node& n = g.nodes[i];
    n.children.reserve(p.body[i].args.size());
    for (const Term& t : p.body[i].args) {
      if (t.is_const()) {
        n.children.push_back(t);
      } else {
        const uint32_t c = node_of_var[t.id];
        if (c == UINT32_MAX) throw std::invalid_argument("build_compgraph: undefined var");
        n.children.push_back(Term::var(c));
        ++g.nodes[c].n_parents;
      }
    }
  }
  for (uint32_t o : p.outputs) {
    const uint32_t n = node_of_var[o];
    if (n == UINT32_MAX) throw std::invalid_argument("build_compgraph: undefined output");
    g.nodes[n].is_goal = true;
    g.goals.push_back(n);
  }
  return g;
}

}  // namespace xorec::slp
