#include "slp/schedule_dfs.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace xorec::slp {
namespace {

/// Child visitation order: variables (by node index) before constants (by
/// index) — the ≺ of §4.3 lifted to graph children.
std::vector<Term> sorted_children(const CompGraph::Node& n) {
  std::vector<Term> c = n.children;
  std::sort(c.begin(), c.end());
  return c;
}

}  // namespace

Program schedule_dfs(const CompGraph& g, const std::string& name) {
  const uint32_t n_nodes = static_cast<uint32_t>(g.nodes.size());

  std::vector<uint32_t> pebble_of(n_nodes, UINT32_MAX);
  std::vector<uint32_t> uses_left(n_nodes);
  for (uint32_t i = 0; i < n_nodes; ++i) uses_left[i] = g.nodes[i].n_parents;

  // Min-heap of reusable pebbles for deterministic ≺-smallest reuse.
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> free_pebbles;
  uint32_t next_pebble = 0;

  Program out;
  out.num_consts = g.num_consts;
  out.name = name;

  std::vector<bool> emitted(n_nodes, false);

  auto emit = [&](uint32_t node) {
    const CompGraph::Node& n = g.nodes[node];
    Instruction ins;
    ins.args.reserve(n.children.size());
    for (const Term& c : sorted_children(n)) {
      if (c.is_const()) {
        ins.args.push_back(c);
      } else {
        assert(pebble_of[c.id] != UINT32_MAX);
        ins.args.push_back(Term::var(pebble_of[c.id]));
      }
    }
    // Consume this instruction's uses, freeing dead non-goal pebbles so that
    // the target may be one of this instruction's own arguments.
    for (const Term& c : n.children) {
      if (!c.is_var()) continue;
      assert(uses_left[c.id] > 0);
      if (--uses_left[c.id] == 0 && !g.nodes[c.id].is_goal)
        free_pebbles.push(pebble_of[c.id]);
    }
    uint32_t target;
    if (!free_pebbles.empty()) {
      target = free_pebbles.top();
      free_pebbles.pop();
    } else {
      target = next_pebble++;
    }
    pebble_of[node] = target;
    ins.target = target;
    out.body.push_back(std::move(ins));
    emitted[node] = true;
  };

  // Iterative postorder from the roots (nodes with no parents), in ≺ order.
  struct Frame {
    uint32_t node;
    std::vector<uint32_t> kids;  // sorted variable children
    size_t cur = 0;
  };
  auto make_frame = [&](uint32_t node) {
    Frame f{node, {}, 0};
    for (const Term& c : sorted_children(g.nodes[node]))
      if (c.is_var()) f.kids.push_back(c.id);
    return f;
  };
  for (uint32_t root = 0; root < n_nodes; ++root) {
    if (g.nodes[root].n_parents != 0 || emitted[root]) continue;
    std::vector<Frame> stack;
    stack.push_back(make_frame(root));
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.cur < f.kids.size()) {
        const uint32_t child = f.kids[f.cur++];
        if (!emitted[child]) stack.push_back(make_frame(child));
        continue;
      }
      if (!emitted[f.node]) emit(f.node);
      stack.pop_back();
    }
  }

  // Every goal must be pebbled (roots cover the whole live graph).
  out.num_vars = next_pebble;
  for (uint32_t goal : g.goals) {
    if (pebble_of[goal] == UINT32_MAX)
      throw std::logic_error("schedule_dfs: goal not reachable from any root");
    out.outputs.push_back(pebble_of[goal]);
  }
  return out;
}

Program schedule_dfs(const Program& fused_ssa) {
  Program out = schedule_dfs(build_compgraph(fused_ssa),
                             fused_ssa.name.empty() ? fused_ssa.name : fused_ssa.name + "+dfs");
  return out;
}

}  // namespace xorec::slp
