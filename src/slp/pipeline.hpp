// The full optimizer flow of §2.1: compressing (§4), fusing (§5),
// scheduling (§6). Keeps every intermediate stage so benchmarks can measure
// each one (the paper's §7.5 tables report exactly these).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bitmatrix/bitmatrix.hpp"
#include "slp/metrics.hpp"
#include "slp/multilevel_cache.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

enum class CompressKind { None, RePair, XorRePair };
enum class ScheduleKind { None, Dfs, Greedy, Multilevel };

struct PipelineOptions {
  CompressKind compress = CompressKind::XorRePair;
  bool fuse = true;
  ScheduleKind schedule = ScheduleKind::Dfs;
  /// Abstract-cache capacity for the greedy scheduler, in blocks — also the
  /// L1 capacity of the Multilevel hierarchy when `cache_levels` is empty.
  /// The paper derives it from hardware: L1 size / block size (§6.2).
  /// 0 picks 32. Spec key: cap=<blocks>.
  size_t greedy_capacity = 0;
  /// Level hierarchy for ScheduleKind::Multilevel, in blocks per level,
  /// strictly increasing (e.g. {32, 512} for L1/L2 at B=1K). Empty derives
  /// a two-level default from greedy_capacity. Spec key: levels=<l1:l2:...>.
  /// Cache identity over these options is PlanCache::fingerprint_config.
  std::vector<size_t> cache_levels;
};

/// The level capacities a Multilevel schedule would pebble against:
///   1. the explicit cache_levels (levels= spec key);
///   2. else {cap, max(16*cap, 512)} when cap= was given;
///   3. else, when the executor block size is known (block_size_bytes > 0)
///      and sysfs exposes the machine's cache hierarchy
///      (slp/cache_topology.hpp), each detected level's size divided by the
///      block size — the paper's §6.2 "L1 size / B" rule per level;
///   4. else the historical {32, 512} constant.
std::vector<size_t> effective_cache_levels(const PipelineOptions& opt,
                                           size_t block_size_bytes = 0);

struct PipelineResult {
  Program base;                     // flat SLP of the bitmatrix ("Base")
  std::optional<Program> compressed;
  std::optional<Program> fused;
  std::optional<Program> scheduled;

  /// Multilevel scheduling only: the hierarchy the schedule pebbled against
  /// and the simulated per-level hit/miss counts of the chosen schedule.
  std::vector<size_t> level_capacities;
  std::optional<MultilevelResult> multilevel;

  /// The program the runtime should execute and how (binary vs fused form).
  const Program& final_program() const;
  ExecForm final_form() const;

  StageMetrics base_metrics() const { return measure(base, ExecForm::Binary); }
};

PipelineResult optimize(const bitmatrix::BitMatrix& m, const PipelineOptions& opt = {},
                        std::string name = {});
PipelineResult optimize_program(Program base, const PipelineOptions& opt = {});

}  // namespace xorec::slp
