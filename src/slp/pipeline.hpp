// The full optimizer flow of §2.1: compressing (§4), fusing (§5),
// scheduling (§6). Keeps every intermediate stage so benchmarks can measure
// each one (the paper's §7.5 tables report exactly these).
#pragma once

#include <optional>
#include <string>

#include "bitmatrix/bitmatrix.hpp"
#include "slp/metrics.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

enum class CompressKind { None, RePair, XorRePair };
enum class ScheduleKind { None, Dfs, Greedy };

struct PipelineOptions {
  CompressKind compress = CompressKind::XorRePair;
  bool fuse = true;
  ScheduleKind schedule = ScheduleKind::Dfs;
  /// Abstract-cache capacity for the greedy scheduler, in blocks. The paper
  /// derives it from hardware: L1 size / block size (§6.2). 0 picks 32.
  size_t greedy_capacity = 0;
};

struct PipelineResult {
  Program base;                     // flat SLP of the bitmatrix ("Base")
  std::optional<Program> compressed;
  std::optional<Program> fused;
  std::optional<Program> scheduled;

  /// The program the runtime should execute and how (binary vs fused form).
  const Program& final_program() const;
  ExecForm final_form() const;

  StageMetrics base_metrics() const { return measure(base, ExecForm::Binary); }
};

PipelineResult optimize(const bitmatrix::BitMatrix& m, const PipelineOptions& opt = {},
                        std::string name = {});
PipelineResult optimize_program(Program base, const PipelineOptions& opt = {});

}  // namespace xorec::slp
