#include "slp/schedule_greedy.hpp"

#include <list>
#include <stdexcept>
#include <unordered_map>

#include "slp/pebble_scheduler.hpp"

namespace xorec::slp {
namespace {

/// Abstract LRU cache over blocks (constants / pebbles) used while
/// constructing the schedule; mirrors the model in §6.2. Single-level
/// policy for the shared pebbling loop: resident blocks value 1, absent 0.
class AbstractCache {
 public:
  explicit AbstractCache(size_t capacity) : cap_(capacity) {}

  bool contains(const Term& b) const { return pos_.count(b.key()) > 0; }
  double hit_value(const Term& b) const { return contains(b) ? 1.0 : 0.0; }

  void touch(const Term& b) {
    auto it = pos_.find(b.key());
    if (it != pos_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() == cap_) {
      pos_.erase(lru_.back().key());
      lru_.pop_back();
    }
    lru_.push_front(b);
    pos_[b.key()] = lru_.begin();
  }

 private:
  size_t cap_;
  std::list<Term> lru_;  // front = MRU
  std::unordered_map<uint64_t, std::list<Term>::iterator> pos_;
};

}  // namespace

Program schedule_greedy(const CompGraph& g, size_t cache_capacity, const std::string& name) {
  if (cache_capacity < 2)
    throw std::invalid_argument("schedule_greedy: capacity must be at least 2");
  AbstractCache cache(cache_capacity);
  return detail::schedule_pebble(g, cache, name);
}

Program schedule_greedy(const Program& fused_ssa, size_t cache_capacity) {
  return schedule_greedy(build_compgraph(fused_ssa), cache_capacity,
                         fused_ssa.name.empty() ? fused_ssa.name
                                                : fused_ssa.name + "+greedy");
}

}  // namespace xorec::slp
