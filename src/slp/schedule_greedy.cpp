#include "slp/schedule_greedy.hpp"

#include <algorithm>
#include <cassert>
#include <list>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace xorec::slp {
namespace {

/// Abstract LRU cache over blocks (constants / pebbles) used while
/// constructing the schedule; mirrors the model in §6.2.
class AbstractCache {
 public:
  explicit AbstractCache(size_t capacity) : cap_(capacity) {}

  bool contains(const Term& b) const { return pos_.count(b.key()) > 0; }

  void touch(const Term& b) {
    auto it = pos_.find(b.key());
    if (it != pos_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() == cap_) {
      pos_.erase(lru_.back().key());
      lru_.pop_back();
    }
    lru_.push_front(b);
    pos_[b.key()] = lru_.begin();
  }

 private:
  size_t cap_;
  std::list<Term> lru_;  // front = MRU
  std::unordered_map<uint64_t, std::list<Term>::iterator> pos_;
};

}  // namespace

Program schedule_greedy(const CompGraph& g, size_t cache_capacity, const std::string& name) {
  if (cache_capacity < 2)
    throw std::invalid_argument("schedule_greedy: capacity must be at least 2");
  const uint32_t n_nodes = static_cast<uint32_t>(g.nodes.size());

  std::vector<uint32_t> pebble_of(n_nodes, UINT32_MAX);
  std::vector<uint32_t> uses_left(n_nodes);
  std::vector<uint32_t> vkids_left(n_nodes, 0);  // uncomputed variable children
  for (uint32_t i = 0; i < n_nodes; ++i) {
    uses_left[i] = g.nodes[i].n_parents;
    for (const Term& c : g.nodes[i].children)
      if (c.is_var()) ++vkids_left[i];
  }

  std::set<uint32_t> ready;  // computable, uncomputed nodes (ordered = ≺)
  for (uint32_t i = 0; i < n_nodes; ++i)
    if (vkids_left[i] == 0) ready.insert(i);

  AbstractCache cache(cache_capacity);
  std::set<uint32_t> free_pebbles;  // dead non-goal pebbles, ≺-ordered
  uint32_t next_pebble = 0;

  auto block_of = [&](const Term& child) {
    return child.is_const() ? child : Term::var(pebble_of[child.id]);
  };

  Program out;
  out.num_consts = g.num_consts;
  out.name = name;

  size_t emitted = 0;
  while (emitted < n_nodes) {
    // Pick the ready node with the highest cached-children ratio.
    assert(!ready.empty());
    uint32_t best = UINT32_MAX;
    double best_ratio = -1.0;
    for (uint32_t n : ready) {
      size_t cached = 0;
      const auto& children = g.nodes[n].children;
      for (const Term& c : children)
        if (cache.contains(block_of(c))) ++cached;
      const double ratio =
          children.empty() ? 0.0 : static_cast<double>(cached) / static_cast<double>(children.size());
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = n;  // std::set iteration order gives the ≺ tie-break
      }
    }
    ready.erase(best);
    const CompGraph::Node& node = g.nodes[best];

    // Argument order: cached children first, then uncached; ≺ within groups.
    std::vector<Term> cached_kids, uncached_kids;
    for (const Term& c : node.children)
      (cache.contains(block_of(c)) ? cached_kids : uncached_kids).push_back(c);
    auto by_block = [&](const Term& a, const Term& b) { return block_of(a) < block_of(b); };
    std::sort(cached_kids.begin(), cached_kids.end(), by_block);
    std::sort(uncached_kids.begin(), uncached_kids.end(), by_block);

    Instruction ins;
    for (const Term& c : cached_kids) {
      cache.touch(block_of(c));
      ins.args.push_back(block_of(c));
    }
    for (const Term& c : uncached_kids) {
      cache.touch(block_of(c));
      ins.args.push_back(block_of(c));
    }

    // Consume uses; dead non-goal pebbles become movable.
    for (const Term& c : node.children) {
      if (!c.is_var()) continue;
      assert(uses_left[c.id] > 0);
      if (--uses_left[c.id] == 0 && !g.nodes[c.id].is_goal)
        free_pebbles.insert(pebble_of[c.id]);
    }

    // Target: movable cached pebble > any movable pebble > fresh pebble.
    uint32_t target = UINT32_MAX;
    for (uint32_t p : free_pebbles) {
      if (cache.contains(Term::var(p))) {
        target = p;
        break;
      }
    }
    if (target == UINT32_MAX && !free_pebbles.empty()) target = *free_pebbles.begin();
    if (target != UINT32_MAX) {
      free_pebbles.erase(target);
    } else {
      target = next_pebble++;
    }
    cache.touch(Term::var(target));

    pebble_of[best] = target;
    ins.target = target;
    out.body.push_back(std::move(ins));
    ++emitted;

    // Newly computable parents. (Parents are found by scanning: graphs are
    // small and this keeps the node structure lean.)
    for (uint32_t i = 0; i < n_nodes; ++i) {
      if (pebble_of[i] != UINT32_MAX || vkids_left[i] == 0) continue;
      for (const Term& c : g.nodes[i].children) {
        if (c.is_var() && c.id == best) {
          if (--vkids_left[i] == 0) ready.insert(i);
        }
      }
    }
  }

  out.num_vars = next_pebble;
  for (uint32_t goal : g.goals) out.outputs.push_back(pebble_of[goal]);
  return out;
}

Program schedule_greedy(const Program& fused_ssa, size_t cache_capacity) {
  return schedule_greedy(build_compgraph(fused_ssa), cache_capacity,
                         fused_ssa.name.empty() ? fused_ssa.name
                                                : fused_ssa.name + "+greedy");
}

}  // namespace xorec::slp
