// Static cost measures of SLPs: #⊕, #M, NVar (§4.1, §5.1, §7.5).
//
// Accounting follows the paper's conventions:
//  - xor_ops(P)   = Σ (arity − 1): real XOR operations.
//  - instructions = |body| (for fused SLP®⊕ the paper's #⊕ column counts
//    fused instructions; see EXPERIMENTS.md).
//  - mem_accesses(P, form):
//      Binary form (Base / (Xor)RePair output, executed as binary chains):
//        3 per XOR — load, load, store (§5).
//      Fused form (SLP®⊕): arity + 1 per instruction (§5.1's #M).
//  - nvar(P) = number of distinct target variables (§4.1's NVar).
#pragma once

#include <cstddef>
#include <vector>

#include "slp/program.hpp"

namespace xorec::slp {

enum class ExecForm {
  Binary,  // n-ary instructions run as accumulate chains of binary XORs
  Fused,   // n-ary instructions run as single multi-input XOR kernels
};

size_t xor_ops(const Program& p);

size_t mem_accesses(const Program& p, ExecForm form);

size_t nvar(const Program& p);

struct StageMetrics {
  size_t xor_ops = 0;
  size_t instructions = 0;
  size_t mem_accesses = 0;
  size_t nvar = 0;
  size_t ccap = 0;
  /// Simulated miss count per cache level (multilevel measurement only —
  /// empty unless measure() was given a level hierarchy). The last entry's
  /// misses are the memory loads.
  std::vector<size_t> level_misses;
};

/// All static measures of one pipeline stage (ccap via the LRU model).
StageMetrics measure(const Program& p, ExecForm form);

/// Same, plus per-level miss counts simulated against `level_capacities`
/// (strictly increasing block counts; see slp/multilevel_cache.hpp).
StageMetrics measure(const Program& p, ExecForm form,
                     const std::vector<size_t>& level_capacities);

}  // namespace xorec::slp
