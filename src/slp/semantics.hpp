// Set-based semantics of SLP⊕ (§4.1): the value of a term is a set of
// constants; ⊕ is symmetric difference. Values are packed BitRows over the
// constants, which makes the semantics exact for erasure coding (the input
// strips are linearly independent) and cheap to compare.
#pragma once

#include <vector>

#include "bitmatrix/bitmatrix.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

using Value = bitmatrix::BitRow;  // one bit per constant

/// Values of all variables after running the program (final assignment wins).
std::vector<Value> evaluate_vars(const Program& p);

/// J P K of §4.1: the values of the returned variables, in return order.
std::vector<Value> denotation(const Program& p);

/// J P K == J Q K — the correctness statement every optimizer pass preserves.
bool equivalent(const Program& p, const Program& q);

/// The denotation as a bitmatrix (row per output) — inverse of
/// `from_bitmatrix` up to optimization.
bitmatrix::BitMatrix denotation_matrix(const Program& p);

}  // namespace xorec::slp
