#include "slp/cache_topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>

namespace xorec::slp {

namespace {

/// First line of `path`, whitespace-trimmed; empty when unreadable.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
    line.pop_back();
  return line;
}

/// Sysfs cache sizes read "32K" / "1M" / "1024"; 0 = unparseable.
size_t parse_size(const std::string& s) {
  size_t v = 0, i = 0;
  for (; i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])); ++i)
    v = v * 10 + static_cast<size_t>(s[i] - '0');
  if (i == 0) return 0;
  if (i == s.size()) return v;
  if (i + 1 != s.size()) return 0;
  switch (std::toupper(static_cast<unsigned char>(s[i]))) {
    case 'K': return v << 10;
    case 'M': return v << 20;
    case 'G': return v << 30;
    default: return 0;
  }
}

}  // namespace

std::vector<size_t> parse_cache_dir(const std::string& dir) {
  // level -> size; instruction caches are skipped, and when a level has
  // several entries (should not happen for one cpu) the largest wins.
  std::map<size_t, size_t> by_level;
  for (size_t idx = 0; idx < 16; ++idx) {
    const std::string base = dir + "/index" + std::to_string(idx) + "/";
    const std::string type = read_line(base + "type");
    if (type.empty()) continue;  // absent index — keep scanning (sparse ids exist)
    if (type != "Data" && type != "Unified") continue;
    const std::string level_s = read_line(base + "level");
    const size_t size = parse_size(read_line(base + "size"));
    if (level_s.empty() || size == 0) continue;
    size_t level = 0;
    for (char c : level_s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) { level = 0; break; }
      level = level * 10 + static_cast<size_t>(c - '0');
    }
    if (level == 0) continue;
    by_level[level] = std::max(by_level[level], size);
  }
  std::vector<size_t> out;
  for (const auto& [level, size] : by_level) out.push_back(size);  // map is level-sorted
  // A usable hierarchy is strictly increasing; drop any level that is not.
  out.erase(std::unique(out.begin(), out.end(),
                        [](size_t a, size_t b) { return b <= a; }),
            out.end());
  return out;
}

const std::vector<size_t>& detected_cache_sizes() {
  static const std::vector<size_t> sizes =
      parse_cache_dir("/sys/devices/system/cpu/cpu0/cache");
  return sizes;
}

}  // namespace xorec::slp
