#include "slp/program.hpp"

#include <stdexcept>
#include <unordered_set>

namespace xorec::slp {

void Program::validate() const {
  std::vector<bool> assigned(num_vars, false);
  for (size_t i = 0; i < body.size(); ++i) {
    const Instruction& ins = body[i];
    if (ins.args.empty())
      throw std::invalid_argument("Program: instruction " + std::to_string(i) + " has no args");
    if (ins.target >= num_vars)
      throw std::invalid_argument("Program: target var out of range");
    for (const Term& t : ins.args) {
      if (t.is_const()) {
        if (t.id >= num_consts) throw std::invalid_argument("Program: const out of range");
      } else {
        if (t.id >= num_vars) throw std::invalid_argument("Program: var out of range");
        if (!assigned[t.id])
          throw std::invalid_argument("Program: var v" + std::to_string(t.id) +
                                      " used before assignment");
      }
    }
    assigned[ins.target] = true;
  }
  for (uint32_t o : outputs) {
    if (o >= num_vars || !assigned[o])
      throw std::invalid_argument("Program: output var never assigned");
  }
}

bool Program::is_ssa() const {
  std::vector<bool> assigned(num_vars, false);
  for (const Instruction& ins : body) {
    if (assigned[ins.target]) return false;
    assigned[ins.target] = true;
  }
  return true;
}

bool Program::is_flat() const {
  for (const Instruction& ins : body)
    for (const Term& t : ins.args)
      if (t.is_var()) return false;
  return true;
}

Program Program::binary_expanded() const {
  Program out;
  out.num_consts = num_consts;
  out.num_vars = num_vars;
  out.outputs = outputs;
  out.name = name.empty() ? name : name + "+bin";
  for (const Instruction& ins : body) {
    if (ins.args.size() <= 2) {
      out.body.push_back(ins);
      continue;
    }
    out.body.push_back({ins.target, {ins.args[0], ins.args[1]}});
    for (size_t i = 2; i < ins.args.size(); ++i) {
      out.body.push_back({ins.target, {Term::var(ins.target), ins.args[i]}});
    }
  }
  return out;
}

std::string Program::to_string() const {
  std::string s;
  auto term_str = [](const Term& t) {
    return (t.is_const() ? "c" : "v") + std::to_string(t.id);
  };
  for (const Instruction& ins : body) {
    s += "v" + std::to_string(ins.target) + " <- ";
    for (size_t i = 0; i < ins.args.size(); ++i) {
      if (i) s += " ^ ";
      s += term_str(ins.args[i]);
    }
    s += ";\n";
  }
  s += "ret(";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i) s += ", ";
    s += "v" + std::to_string(outputs[i]);
  }
  s += ")\n";
  return s;
}

Program from_bitmatrix(const bitmatrix::BitMatrix& m, std::string name) {
  Program p;
  p.name = std::move(name);
  p.num_consts = static_cast<uint32_t>(m.cols());
  p.num_vars = static_cast<uint32_t>(m.rows());
  p.body.reserve(m.rows());
  p.outputs.reserve(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    const auto ones = m.row(r).ones();
    if (ones.empty())
      throw std::invalid_argument("from_bitmatrix: zero row " + std::to_string(r));
    Instruction ins;
    ins.target = static_cast<uint32_t>(r);
    ins.args.reserve(ones.size());
    for (uint32_t c : ones) ins.args.push_back(Term::constant(c));
    p.body.push_back(std::move(ins));
    p.outputs.push_back(static_cast<uint32_t>(r));
  }
  return p;
}

}  // namespace xorec::slp
