// Debug/visualization helpers: Graphviz export of computation graphs (§6.4)
// so optimizer output can be inspected with `dot -Tsvg`.
#pragma once

#include <string>

#include "slp/compgraph.hpp"

namespace xorec::slp {

/// DOT source: leaves (constants) as boxes, inner nodes as circles, goals
/// double-circled — the paper's Figure notation for G_eg.
std::string to_dot(const CompGraph& g, const std::string& graph_name = "slp");

}  // namespace xorec::slp
