// Multilevel extension of the §6.2 abstract cache — the §8 future-work item
// ("we are thinking about using the multilevel pebble game introduced by
// Savage to accommodate the L2 and L3").
//
// Model (Savage's memory-hierarchy game specialized to inclusive LRU): a
// stack of LRU levels with growing capacities. A touch searches levels
// top-down; a hit at level i refreshes the block in levels 0..i (inclusion);
// a miss at every level loads from memory into all levels. A block evicted
// from level i falls to level i+1 (from the last level, to memory). The
// reported cost weights transfers by the level they cross.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "slp/metrics.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

/// The inclusive LRU hierarchy itself, shared by the §8 simulator below and
/// the multilevel pebbling scheduler (slp/schedule_multilevel.cpp) — one
/// implementation, so the schedule optimizes exactly the metric the
/// simulator reports. A touch searches levels top-down; a hit at level i
/// refreshes levels 0..i (inclusion); a miss loads into every level; a
/// block evicted from level i falls to level i+1.
class InclusiveLruHierarchy {
 public:
  explicit InclusiveLruHierarchy(const std::vector<size_t>& capacities) {
    for (size_t c : capacities) levels_.emplace_back(c);
  }

  size_t level_count() const { return levels_.size(); }

  /// Topmost level holding `k`, or level_count() when it is a full miss.
  size_t hit_level(uint64_t k) const {
    for (size_t i = 0; i < levels_.size(); ++i)
      if (levels_[i].contains(k)) return i;
    return levels_.size();
  }

  /// Record an access; returns the level the touch hit (pre-touch state).
  size_t touch(uint64_t k) {
    const size_t hit = hit_level(k);
    // Inclusion: the block enters every level at or above the hit point,
    // deepest first so cascaded evictions land below.
    for (size_t i = std::min(hit, levels_.size() - 1);; --i) {
      const auto victim = levels_[i].touch(k);
      if (victim && i + 1 < levels_.size()) levels_[i + 1].touch(*victim);
      if (i == 0) break;
    }
    return hit;
  }

 private:
  /// Plain LRU list with O(1) membership.
  class LruLevel {
   public:
    explicit LruLevel(size_t cap) : cap_(cap) {}

    bool contains(uint64_t k) const { return pos_.count(k) > 0; }

    /// Insert/refresh k; returns the evicted key if the level overflowed.
    std::optional<uint64_t> touch(uint64_t k) {
      auto it = pos_.find(k);
      if (it != pos_.end()) {
        order_.splice(order_.begin(), order_, it->second);
        return std::nullopt;
      }
      order_.push_front(k);
      pos_[k] = order_.begin();
      if (order_.size() > cap_) {
        const uint64_t victim = order_.back();
        order_.pop_back();
        pos_.erase(victim);
        return victim;
      }
      return std::nullopt;
    }

   private:
    size_t cap_;
    std::list<uint64_t> order_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos_;
  };

  std::vector<LruLevel> levels_;
};

struct LevelStats {
  size_t hits = 0;
  size_t misses = 0;  // touches that had to go past this level
};

struct MultilevelResult {
  std::vector<LevelStats> levels;   // one per cache level
  size_t memory_loads = 0;          // misses at every level
  /// Weighted cost: sum over levels of misses * latency[i] + memory loads *
  /// latency.back() when latencies are supplied, else plain miss counts.
  double weighted_cost = 0;
};

/// capacities must be strictly increasing (e.g. {512, 8192} blocks for
/// 32 KB L1 / 512 KB L2 with 64-byte blocks). latencies, if non-empty, has
/// one entry per level plus one for memory (e.g. {4, 12, 150} cycles).
MultilevelResult simulate_multilevel(const Program& p,
                                     const std::vector<size_t>& capacities,
                                     ExecForm form,
                                     const std::vector<double>& latencies = {});

}  // namespace xorec::slp
