// Multilevel extension of the §6.2 abstract cache — the §8 future-work item
// ("we are thinking about using the multilevel pebble game introduced by
// Savage to accommodate the L2 and L3").
//
// Model (Savage's memory-hierarchy game specialized to inclusive LRU): a
// stack of LRU levels with growing capacities. A touch searches levels
// top-down; a hit at level i refreshes the block in levels 0..i (inclusion);
// a miss at every level loads from memory into all levels. A block evicted
// from level i falls to level i+1 (from the last level, to memory). The
// reported cost weights transfers by the level they cross.
#pragma once

#include <cstddef>
#include <vector>

#include "slp/metrics.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

struct LevelStats {
  size_t hits = 0;
  size_t misses = 0;  // touches that had to go past this level
};

struct MultilevelResult {
  std::vector<LevelStats> levels;   // one per cache level
  size_t memory_loads = 0;          // misses at every level
  /// Weighted cost: sum over levels of misses * latency[i] + memory loads *
  /// latency.back() when latencies are supplied, else plain miss counts.
  double weighted_cost = 0;
};

/// capacities must be strictly increasing (e.g. {512, 8192} blocks for
/// 32 KB L1 / 512 KB L2 with 64-byte blocks). latencies, if non-empty, has
/// one entry per level plus one for memory (e.g. {4, 12, 150} cycles).
MultilevelResult simulate_multilevel(const Program& p,
                                     const std::vector<size_t>& capacities,
                                     ExecForm form,
                                     const std::vector<double>& latencies = {});

}  // namespace xorec::slp
