// XOR fusion (§5.2) — deforestation for SLP⊕.
//
// Repeatedly unfolds every variable that is used exactly once (as an
// argument, and is not returned) into its single use site, eliminating the
// intermediate array. Theorem 2: each unfolding strictly decreases #M.
//
// Variables used more than once are deliberately kept (§5.2's B-vs-C
// example): unfolding them would *uncompress* the program and raise #M.
//
// Unfolding applies ⊕-cancellation syntactically: if the inlined definition
// shares a term with the host instruction, the duplicated pair XORs to zero
// and both occurrences are dropped.
#pragma once

#include "slp/program.hpp"

namespace xorec::slp {

/// Input must be SSA (every pipeline stage before scheduling is).
Program fuse(const Program& p);

}  // namespace xorec::slp
