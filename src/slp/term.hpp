// Terms of SLP⊕ / SLP®⊕ (§4.1): constants are program inputs (byte-array
// strips), variables are arrays allocated at runtime.
//
// The total order ≺ (§4.3) places (temporal) variables before constants,
// variables by generation order, constants by index.
#pragma once

#include <cstdint>
#include <functional>

namespace xorec::slp {

struct Term {
  enum class Kind : uint8_t { Var = 0, Const = 1 };

  Kind kind = Kind::Const;
  uint32_t id = 0;

  static Term var(uint32_t id) { return Term{Kind::Var, id}; }
  static Term constant(uint32_t id) { return Term{Kind::Const, id}; }

  bool is_var() const { return kind == Kind::Var; }
  bool is_const() const { return kind == Kind::Const; }

  friend bool operator==(const Term&, const Term&) = default;

  /// The paper's ≺: variables (by generation order) precede constants
  /// (by index). Kind::Var == 0 makes the pair compare do exactly that.
  friend auto operator<=>(const Term& a, const Term& b) {
    if (a.kind != b.kind) return a.kind <=> b.kind;
    return a.id <=> b.id;
  }

  /// Dense key for hash maps: low bit = kind.
  uint64_t key() const { return (static_cast<uint64_t>(id) << 1) | static_cast<uint64_t>(kind); }
  static Term from_key(uint64_t k) {
    return Term{static_cast<Kind>(k & 1), static_cast<uint32_t>(k >> 1)};
  }
};

struct TermHash {
  size_t operator()(const Term& t) const { return std::hash<uint64_t>{}(t.key()); }
};

/// Unordered pair of terms with the lexicographic ⊏ ordering of §4.3.
struct TermPair {
  Term lo, hi;  // lo ≺ hi (or equal never happens: pairs are of distinct terms)

  static TermPair make(Term a, Term b) { return (a < b) ? TermPair{a, b} : TermPair{b, a}; }

  friend bool operator==(const TermPair&, const TermPair&) = default;
  friend auto operator<=>(const TermPair& a, const TermPair& b) {
    if (auto c = a.lo <=> b.lo; c != 0) return c;
    return a.hi <=> b.hi;
  }

  uint64_t key() const { return (lo.key() << 32) | hi.key(); }
};

struct TermPairHash {
  size_t operator()(const TermPair& p) const { return std::hash<uint64_t>{}(p.key()); }
};

}  // namespace xorec::slp
