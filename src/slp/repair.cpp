#include "slp/repair.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "slp/semantics.hpp"

namespace xorec::slp {
namespace {

using bitmatrix::BitRow;

/// Sorted-vector set of terms: the definition of one original variable.
using Def = std::vector<Term>;

bool def_contains(const Def& d, const Term& t) {
  return std::binary_search(d.begin(), d.end(), t);
}
void def_erase(Def& d, const Term& t) {
  auto it = std::lower_bound(d.begin(), d.end(), t);
  assert(it != d.end() && *it == t);
  d.erase(it);
}
void def_insert(Def& d, const Term& t) {
  auto it = std::lower_bound(d.begin(), d.end(), t);
  assert(it == d.end() || !(*it == t));
  d.insert(it, t);
}

class Compressor {
 public:
  Compressor(const Program& flat, const CompressOptions& opt) : opt_(opt) {
    if (!flat.is_flat())
      throw std::invalid_argument("repair_compress: program must be flat (constants only)");
    num_consts_ = flat.num_consts;

    // One definition per *output*; the paper's originals are the returned
    // variables. (Flat programs assign each output var exactly once.)
    std::vector<Def> defs_by_var(flat.num_vars);
    std::vector<BitRow> val_by_var(flat.num_vars, BitRow(num_consts_));
    for (const Instruction& ins : flat.body) {
      Def d;
      BitRow v(num_consts_);
      for (const Term& t : ins.args) {
        // Fold duplicate constants by cancellation.
        if (def_contains(d, t)) def_erase(d, t); else def_insert(d, t);
        v.flip(t.id);
      }
      defs_by_var[ins.target] = std::move(d);
      val_by_var[ins.target] = std::move(v);
    }

    const size_t n = flat.outputs.size();
    defs_.resize(n);
    values_.resize(n);
    alias_.assign(n, Term::var(UINT32_MAX));
    alive_.assign(n, true);
    n_alive_ = 0;
    for (size_t i = 0; i < n; ++i) {
      defs_[i] = defs_by_var[flat.outputs[i]];
      values_[i] = val_by_var[flat.outputs[i]];
      if (defs_[i].empty())
        throw std::invalid_argument("repair_compress: output with zero value");
      if (defs_[i].size() == 1) {
        alias_[i] = defs_[i][0];
        alive_[i] = false;
      } else {
        ++n_alive_;
      }
    }
    for (size_t i = 0; i < n; ++i)
      if (alive_[i]) add_all_pairs(defs_[i]);
  }

  Program run() {
    while (n_alive_ > 0) {
      const TermPair p = choose_pair();
      apply_pair(p);
      if (opt_.use_rebuild) rebuild_all();
    }
    return assemble();
  }

 private:
  // ---- pair bookkeeping -------------------------------------------------
  void inc_pair(const TermPair& p) {
    uint32_t& c = counts_[p];
    if (c > 0) buckets_[c].erase(p);
    ++c;
    if (buckets_.size() <= c) buckets_.resize(c + 1);
    buckets_[c].insert(p);
    max_count_ = std::max<size_t>(max_count_, c);
  }
  void dec_pair(const TermPair& p) {
    auto it = counts_.find(p);
    assert(it != counts_.end() && it->second > 0);
    buckets_[it->second].erase(p);
    if (--it->second == 0) {
      counts_.erase(it);
    } else {
      buckets_[it->second].insert(p);
    }
  }
  void add_all_pairs(const Def& d) {
    for (size_t i = 0; i < d.size(); ++i)
      for (size_t j = i + 1; j < d.size(); ++j) inc_pair(TermPair::make(d[i], d[j]));
  }
  void remove_all_pairs(const Def& d) {
    for (size_t i = 0; i < d.size(); ++i)
      for (size_t j = i + 1; j < d.size(); ++j) dec_pair(TermPair::make(d[i], d[j]));
  }

  TermPair choose_pair() {
    while (max_count_ > 0 && buckets_[max_count_].empty()) --max_count_;
    assert(max_count_ > 0 && "alive defs always expose at least one pair");
    return *buckets_[max_count_].begin();  // ⊏-smallest among most frequent
  }

  // ---- temporals ---------------------------------------------------------
  const BitRow& term_value(const Term& t) {
    if (t.is_const()) {
      if (const_values_.empty()) {
        const_values_.resize(num_consts_, BitRow(num_consts_));
        for (uint32_t c = 0; c < num_consts_; ++c) const_values_[c].flip(c);
      }
      return const_values_[t.id];
    }
    return temp_values_[t.id];
  }

  Term get_or_make_temporal(const TermPair& p) {
    auto it = temp_lookup_.find(p);
    if (it != temp_lookup_.end()) return Term::var(it->second);
    const uint32_t id = static_cast<uint32_t>(temps_.size());
    temps_.push_back({id, {p.lo, p.hi}});
    BitRow v = term_value(p.lo);
    v ^= term_value(p.hi);
    temp_values_.push_back(std::move(v));
    temp_lookup_.emplace(p, id);
    return Term::var(id);
  }

  // ---- core steps ----------------------------------------------------------
  void apply_pair(const TermPair& p) {
    const Term t = get_or_make_temporal(p);
    // Snapshot: affected defs are those containing both halves.
    for (size_t i = 0; i < defs_.size(); ++i) {
      if (!alive_[i]) continue;
      Def& d = defs_[i];
      if (!def_contains(d, p.lo) || !def_contains(d, p.hi)) continue;

      // Removed terms: the pair, plus t itself when already present
      // (x ⊕ y ⊕ t = 0 — ⊕-cancellation).
      std::vector<Term> removed = {p.lo, p.hi};
      const bool cancel = def_contains(d, t);
      if (cancel) removed.push_back(t);

      // Incremental pair-count update in O(|def|).
      for (const Term& z : d) {
        if (std::find(removed.begin(), removed.end(), z) != removed.end()) continue;
        for (const Term& r : removed) dec_pair(TermPair::make(r, z));
        if (!cancel) inc_pair(TermPair::make(t, z));
      }
      for (size_t a = 0; a < removed.size(); ++a)
        for (size_t b = a + 1; b < removed.size(); ++b)
          dec_pair(TermPair::make(removed[a], removed[b]));

      for (const Term& r : removed) def_erase(d, r);
      if (!cancel) def_insert(d, t);

      assert(!d.empty() && "definition value cannot become zero");
      if (d.size() == 1) retire(i, d[0]);
    }
  }

  void retire(size_t orig, const Term& alias) {
    alias_[orig] = alias;
    alive_[orig] = false;
    --n_alive_;
    defs_[orig].clear();
  }

  void rebuild_all() {
    for (size_t i = 0; i < defs_.size(); ++i) {
      if (!alive_[i]) continue;
      rebuild_one(i);
    }
  }

  void rebuild_one(size_t orig) {
    BitRow rem = values_[orig];
    std::vector<bool> in_s(temps_.size(), false);
    std::vector<uint32_t> s;
    size_t rem_size = rem.popcount();
    for (;;) {
      size_t best_size = rem_size;
      uint32_t best = UINT32_MAX;
      for (uint32_t t = 0; t < temps_.size(); ++t) {
        if (in_s[t]) continue;
        const size_t sz = rem.xor_popcount(temp_values_[t]);
        if (sz < best_size) {  // strict: ties keep the earlier (≺-smaller) t
          best_size = sz;
          best = t;
        }
      }
      if (best == UINT32_MAX) break;
      rem ^= temp_values_[best];
      rem_size = best_size;
      in_s[best] = true;
      s.push_back(best);
    }
    const size_t new_size = rem_size + s.size();
    if (new_size >= defs_[orig].size()) return;

    Def nd;
    nd.reserve(new_size);
    std::sort(s.begin(), s.end());
    for (uint32_t t : s) nd.push_back(Term::var(t));
    for (uint32_t c : rem.ones()) nd.push_back(Term::constant(c));
    std::sort(nd.begin(), nd.end());

    remove_all_pairs(defs_[orig]);
    defs_[orig] = std::move(nd);
    if (defs_[orig].size() == 1) {
      retire(orig, defs_[orig][0]);
    } else {
      add_all_pairs(defs_[orig]);
    }
  }

  // ---- final assembly -----------------------------------------------------
  Program assemble() {
    // Liveness from aliases downward (Rebuild can orphan temporals).
    std::vector<bool> live(temps_.size(), false);
    std::vector<uint32_t> work;
    for (const Term& a : alias_)
      if (a.is_var() && !live[a.id]) {
        live[a.id] = true;
        work.push_back(a.id);
      }
    while (!work.empty()) {
      const uint32_t t = work.back();
      work.pop_back();
      for (const Term& arg : temps_[t].args) {
        if (arg.is_var() && !live[arg.id]) {
          live[arg.id] = true;
          work.push_back(arg.id);
        }
      }
    }

    std::vector<uint32_t> new_id(temps_.size(), UINT32_MAX);
    Program out;
    out.num_consts = num_consts_;
    for (uint32_t t = 0; t < temps_.size(); ++t) {
      if (!live[t]) continue;
      new_id[t] = static_cast<uint32_t>(out.body.size());
      Instruction ins;
      ins.target = new_id[t];
      for (const Term& a : temps_[t].args)
        ins.args.push_back(a.is_var() ? Term::var(new_id[a.id]) : a);
      out.body.push_back(std::move(ins));
    }
    out.num_vars = static_cast<uint32_t>(out.body.size());
    for (const Term& a : alias_) {
      if (a.is_var()) {
        out.outputs.push_back(new_id[a.id]);
      } else {
        // Output equals a constant: materialize a unary copy.
        const uint32_t v = out.num_vars++;
        out.body.push_back({v, {a}});
        out.outputs.push_back(v);
      }
    }
    return out;
  }

  CompressOptions opt_;
  uint32_t num_consts_ = 0;

  std::vector<Def> defs_;       // live original definitions, by output index
  std::vector<BitRow> values_;  // fixed semantic values of the originals
  std::vector<Term> alias_;     // final term of each retired original
  std::vector<bool> alive_;
  size_t n_alive_ = 0;

  std::vector<Instruction> temps_;   // t_i <- lo ⊕ hi, ids in generation order
  std::vector<BitRow> temp_values_;
  std::unordered_map<TermPair, uint32_t, TermPairHash> temp_lookup_;
  std::vector<BitRow> const_values_;  // lazily built unit vectors

  std::unordered_map<TermPair, uint32_t, TermPairHash> counts_;
  std::vector<std::set<TermPair>> buckets_;  // by count, ⊏-ordered inside
  size_t max_count_ = 0;
};

}  // namespace

Program repair_compress(const Program& flat, const CompressOptions& opt) {
  Program out = Compressor(flat, opt).run();
  out.name = flat.name.empty() ? flat.name : flat.name + (opt.use_rebuild ? "+xorrepair" : "+repair");
  return out;
}

Program xor_repair_compress(const Program& flat) {
  return repair_compress(flat, CompressOptions{.use_rebuild = true});
}

}  // namespace xorec::slp
