// Real-machine cache topology for the multilevel scheduler's default
// hierarchy. §6.2 derives the abstract-cache capacity from hardware (L1
// size / block size); the multilevel pass generalizes that to a level
// hierarchy — and the honest default is the machine's OWN hierarchy, read
// from sysfs (/sys/devices/system/cpu/cpu0/cache/index*/), not a hardcoded
// 32:512 guess. effective_cache_levels (slp/pipeline.hpp) converts these
// byte sizes into per-level block capacities when the codec's block size is
// known; the 32:512 constant remains the fallback for machines without
// sysfs (containers, non-Linux).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xorec::slp {

/// Data/unified cache sizes in bytes, L1..Ln ascending, of cpu0 — memoized
/// for the process. Empty when the topology cannot be read (no sysfs).
const std::vector<size_t>& detected_cache_sizes();

/// Parse one sysfs-style cpu cache directory (the testable core of
/// detected_cache_sizes): scans `dir`/index*/{level,type,size}, keeps Data
/// and Unified caches, returns sizes in bytes ascending by level. Unreadable
/// or malformed entries are skipped; an unusable directory yields {}.
std::vector<size_t> parse_cache_dir(const std::string& dir);

}  // namespace xorec::slp
