#include "slp/pipeline.hpp"

#include "slp/fusion.hpp"
#include "slp/repair.hpp"
#include "slp/schedule_dfs.hpp"
#include "slp/schedule_greedy.hpp"

namespace xorec::slp {

const Program& PipelineResult::final_program() const {
  if (scheduled) return *scheduled;
  if (fused) return *fused;
  if (compressed) return *compressed;
  return base;
}

ExecForm PipelineResult::final_form() const {
  // Fusion is the point where instructions become real multi-input kernels;
  // before it, every stage executes as binary XOR chains.
  if (scheduled || fused) return ExecForm::Fused;
  return ExecForm::Binary;
}

PipelineResult optimize(const bitmatrix::BitMatrix& m, const PipelineOptions& opt,
                        std::string name) {
  return optimize_program(from_bitmatrix(m, std::move(name)), opt);
}

PipelineResult optimize_program(Program base, const PipelineOptions& opt) {
  PipelineResult r;
  r.base = std::move(base);

  const Program* cur = &r.base;
  switch (opt.compress) {
    case CompressKind::None:
      break;
    case CompressKind::RePair:
      r.compressed = repair_compress(*cur);
      cur = &*r.compressed;
      break;
    case CompressKind::XorRePair:
      r.compressed = xor_repair_compress(*cur);
      cur = &*r.compressed;
      break;
  }
  if (opt.fuse) {
    r.fused = fuse(*cur);
    cur = &*r.fused;
  }
  switch (opt.schedule) {
    case ScheduleKind::None:
      break;
    case ScheduleKind::Dfs:
      r.scheduled = schedule_dfs(*cur);
      break;
    case ScheduleKind::Greedy: {
      const size_t cap = opt.greedy_capacity ? opt.greedy_capacity : 32;
      r.scheduled = schedule_greedy(*cur, cap);
      break;
    }
  }
  return r;
}

}  // namespace xorec::slp
