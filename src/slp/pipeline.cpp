#include "slp/pipeline.hpp"

#include "slp/cache_topology.hpp"

#include <algorithm>

#include "slp/fusion.hpp"
#include "slp/repair.hpp"
#include "slp/schedule_dfs.hpp"
#include "slp/schedule_greedy.hpp"
#include "slp/schedule_multilevel.hpp"

namespace xorec::slp {

const Program& PipelineResult::final_program() const {
  if (scheduled) return *scheduled;
  if (fused) return *fused;
  if (compressed) return *compressed;
  return base;
}

ExecForm PipelineResult::final_form() const {
  // Fusion is the point where instructions become real multi-input kernels;
  // before it, every stage executes as binary XOR chains.
  if (scheduled || fused) return ExecForm::Fused;
  return ExecForm::Binary;
}

std::vector<size_t> effective_cache_levels(const PipelineOptions& opt,
                                           size_t block_size_bytes) {
  if (!opt.cache_levels.empty()) return opt.cache_levels;
  if (opt.greedy_capacity) {
    const size_t l1 = opt.greedy_capacity;
    return {l1, std::max<size_t>(16 * l1, 512)};
  }
  if (block_size_bytes) {
    // Calibrate from the machine's own hierarchy: capacity = level size / B
    // per detected level (§6.2's rule). Levels that collapse below 2 blocks
    // or stop growing after the division are dropped.
    std::vector<size_t> levels;
    for (size_t bytes : detected_cache_sizes()) {
      const size_t blocks = bytes / block_size_bytes;
      if (blocks < 2) continue;
      if (!levels.empty() && blocks <= levels.back()) continue;
      levels.push_back(blocks);
    }
    if (levels.size() >= 2) return levels;
    if (levels.size() == 1) return {levels[0], std::max<size_t>(16 * levels[0], 512)};
  }
  return {32, 512};
}

PipelineResult optimize(const bitmatrix::BitMatrix& m, const PipelineOptions& opt,
                        std::string name) {
  return optimize_program(from_bitmatrix(m, std::move(name)), opt);
}

PipelineResult optimize_program(Program base, const PipelineOptions& opt) {
  PipelineResult r;
  r.base = std::move(base);

  const Program* cur = &r.base;
  switch (opt.compress) {
    case CompressKind::None:
      break;
    case CompressKind::RePair:
      r.compressed = repair_compress(*cur);
      cur = &*r.compressed;
      break;
    case CompressKind::XorRePair:
      r.compressed = xor_repair_compress(*cur);
      cur = &*r.compressed;
      break;
  }
  if (opt.fuse) {
    r.fused = fuse(*cur);
    cur = &*r.fused;
  }
  switch (opt.schedule) {
    case ScheduleKind::None:
      break;
    case ScheduleKind::Dfs:
      r.scheduled = schedule_dfs(*cur);
      break;
    case ScheduleKind::Greedy: {
      const size_t cap = opt.greedy_capacity ? opt.greedy_capacity : 32;
      r.scheduled = schedule_greedy(*cur, cap);
      break;
    }
    case ScheduleKind::Multilevel: {
      r.level_capacities = effective_cache_levels(opt);
      r.scheduled = schedule_multilevel(*cur, r.level_capacities);
      // Score the chosen schedule against the hierarchy it pebbled for, so
      // callers (StageMetrics, benches, plan introspection) see the
      // per-level miss counts without re-simulating.
      r.multilevel = simulate_multilevel(*r.scheduled, r.level_capacities, ExecForm::Fused);
      break;
    }
  }
  return r;
}

}  // namespace xorec::slp
