#include "slp/schedule_multilevel.hpp"

#include <stdexcept>

#include "slp/multilevel_cache.hpp"
#include "slp/pebble_scheduler.hpp"

namespace xorec::slp {
namespace {

/// The shared inclusive-LRU hierarchy as a pebbling cache policy — the same
/// InclusiveLruHierarchy simulate_multilevel scores against, so the schedule
/// optimizes exactly the metric the simulator reports.
class MultilevelPebbleCache {
 public:
  explicit MultilevelPebbleCache(const std::vector<size_t>& capacities)
      : cache_(capacities) {}

  /// Graded residency: L1 hit = 1, deeper levels fall off linearly, miss = 0.
  double hit_value(const Term& b) const {
    const size_t level = cache_.hit_level(b.key());
    if (level == cache_.level_count()) return 0.0;
    return static_cast<double>(cache_.level_count() - level) /
           static_cast<double>(cache_.level_count());
  }

  void touch(const Term& b) { cache_.touch(b.key()); }

 private:
  InclusiveLruHierarchy cache_;
};

void check_capacities(const std::vector<size_t>& capacities) {
  if (capacities.empty())
    throw std::invalid_argument("schedule_multilevel: no cache levels");
  if (capacities.front() < 2)
    throw std::invalid_argument("schedule_multilevel: first level must hold >= 2 blocks");
  for (size_t i = 1; i < capacities.size(); ++i)
    if (capacities[i] <= capacities[i - 1])
      throw std::invalid_argument("schedule_multilevel: capacities must increase");
}

}  // namespace

Program schedule_multilevel(const CompGraph& g, const std::vector<size_t>& capacities,
                            const std::string& name) {
  check_capacities(capacities);
  MultilevelPebbleCache cache(capacities);
  return detail::schedule_pebble(g, cache, name);
}

Program schedule_multilevel(const Program& fused_ssa, const std::vector<size_t>& capacities) {
  return schedule_multilevel(build_compgraph(fused_ssa), capacities,
                             fused_ssa.name.empty() ? fused_ssa.name
                                                    : fused_ssa.name + "+multilevel");
}

}  // namespace xorec::slp
