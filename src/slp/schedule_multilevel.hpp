// Multilevel-cache scheduling (§8's future-work item made a real pass).
//
// Same bottom-up pebbling loop as the §6.6 greedy scheduler
// (slp/pebble_scheduler.hpp), but the abstract cache is the inclusive LRU
// hierarchy of slp/multilevel_cache.hpp: node selection and argument
// ordering grade children by the LEVEL they would hit (an L1-resident block
// outranks an L2-resident one, which outranks memory), so the schedule
// keeps hot pebbles near the top of the hierarchy instead of treating every
// cached block as equal.
//
// `capacities` are the per-level block counts (strictly increasing, e.g.
// {32, 512} for L1/L2 at the paper's B=1K blocks); the first level must hold
// at least 2 blocks, like the greedy capacity.
#pragma once

#include <vector>

#include "slp/compgraph.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

Program schedule_multilevel(const Program& fused_ssa, const std::vector<size_t>& capacities);
Program schedule_multilevel(const CompGraph& g, const std::vector<size_t>& capacities,
                            const std::string& name = {});

}  // namespace xorec::slp
