// SLP augmented with an abstract LRU cache (§6.2).
//
// The cache is an ordered sequence of blocks (constants and variables).
// Executing v <- ⊕(t1, ..., tk) touches t1..tk in order (loading absent
// blocks / refreshing present ones) and then touches v (allocating it on
// first assignment). A full cache evicts the LRU block; every eviction and
// every load is one I/O transfer.
//
// Measures:
//  - CCap(P):       minimum capacity that avoids any *reload* (loading a
//                   block that was previously evicted). Computed via LRU
//                   stack distances (LRU's inclusion property makes misses
//                   monotone in capacity), and never below the largest
//                   single-instruction footprint (an instruction requires
//                   {t1..tk, v} ⊆ C simultaneously).
//  - IOcost(P, c):  loads + evictions when running with capacity c.
#pragma once

#include <cstddef>
#include <vector>

#include "slp/metrics.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

/// Block identity in the abstract cache: constants and variables.
/// (Same shape as Term; aliased for readability in cache-model code.)
using Block = Term;

/// The exact sequence of block touches the execution form produces; the
/// common input to both measures, exposed for tests.
std::vector<Block> touch_sequence(const Program& p, ExecForm form);

struct CacheSimResult {
  size_t loads = 0;      // memory -> cache transfers
  size_t evictions = 0;  // cache -> memory transfers
  size_t reloads = 0;    // loads of blocks that were evicted earlier
  size_t io_cost() const { return loads + evictions; }
};

CacheSimResult simulate_lru(const Program& p, size_t capacity, ExecForm form);

size_t io_cost(const Program& p, size_t capacity, ExecForm form);

size_t ccap(const Program& p, ExecForm form);

}  // namespace xorec::slp
