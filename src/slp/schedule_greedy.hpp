// Bottom-up greedy scheduling heuristic (§6.6).
//
// Takes the abstract-cache capacity as a parameter. At each step it picks,
// among the computable nodes, the one maximizing |H| / |C| where C are the
// node's children and H the children whose block is currently cached; it
// accesses cached children first, then the rest, then places the result on a
// movable cached pebble / any movable pebble / a fresh pebble, in that
// preference order. Ties break by ≺ (node index, pebble id).
#pragma once

#include "slp/compgraph.hpp"
#include "slp/program.hpp"

namespace xorec::slp {

Program schedule_greedy(const Program& fused_ssa, size_t cache_capacity);
Program schedule_greedy(const CompGraph& g, size_t cache_capacity,
                        const std::string& name = {});

}  // namespace xorec::slp
