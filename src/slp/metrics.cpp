#include "slp/metrics.hpp"

#include "slp/cache_model.hpp"

namespace xorec::slp {

size_t xor_ops(const Program& p) {
  size_t n = 0;
  for (const Instruction& ins : p.body) n += ins.args.size() - 1;
  return n;
}

size_t mem_accesses(const Program& p, ExecForm form) {
  size_t n = 0;
  for (const Instruction& ins : p.body) {
    if (form == ExecForm::Binary) {
      n += 3 * (ins.args.size() - 1);
      if (ins.args.size() == 1) n += 2;  // unary copy still loads + stores
    } else {
      n += ins.args.size() + 1;
    }
  }
  return n;
}

size_t nvar(const Program& p) {
  std::vector<bool> seen(p.num_vars, false);
  size_t n = 0;
  for (const Instruction& ins : p.body) {
    if (!seen[ins.target]) {
      seen[ins.target] = true;
      ++n;
    }
  }
  return n;
}

StageMetrics measure(const Program& p, ExecForm form) {
  StageMetrics m;
  m.xor_ops = xor_ops(p);
  m.instructions = p.body.size();
  m.mem_accesses = mem_accesses(p, form);
  m.nvar = nvar(p);
  m.ccap = ccap(p, form);
  return m;
}

}  // namespace xorec::slp
