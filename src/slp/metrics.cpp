#include "slp/metrics.hpp"

#include "slp/cache_model.hpp"
#include "slp/multilevel_cache.hpp"

namespace xorec::slp {

size_t xor_ops(const Program& p) {
  size_t n = 0;
  for (const Instruction& ins : p.body) n += ins.args.size() - 1;
  return n;
}

size_t mem_accesses(const Program& p, ExecForm form) {
  size_t n = 0;
  for (const Instruction& ins : p.body) {
    if (form == ExecForm::Binary) {
      n += 3 * (ins.args.size() - 1);
      if (ins.args.size() == 1) n += 2;  // unary copy still loads + stores
    } else {
      n += ins.args.size() + 1;
    }
  }
  return n;
}

size_t nvar(const Program& p) {
  std::vector<bool> seen(p.num_vars, false);
  size_t n = 0;
  for (const Instruction& ins : p.body) {
    if (!seen[ins.target]) {
      seen[ins.target] = true;
      ++n;
    }
  }
  return n;
}

StageMetrics measure(const Program& p, ExecForm form) {
  StageMetrics m;
  m.xor_ops = xor_ops(p);
  m.instructions = p.body.size();
  m.mem_accesses = mem_accesses(p, form);
  m.nvar = nvar(p);
  m.ccap = ccap(p, form);
  return m;
}

StageMetrics measure(const Program& p, ExecForm form,
                     const std::vector<size_t>& level_capacities) {
  StageMetrics m = measure(p, form);
  const MultilevelResult r = simulate_multilevel(p, level_capacities, form);
  m.level_misses.reserve(r.levels.size());
  for (const LevelStats& l : r.levels) m.level_misses.push_back(l.misses);
  return m;
}

}  // namespace xorec::slp
