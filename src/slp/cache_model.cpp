#include "slp/cache_model.hpp"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <unordered_set>

namespace xorec::slp {

std::vector<Block> touch_sequence(const Program& p, ExecForm form) {
  std::vector<Block> seq;
  const Program* prog = &p;
  Program expanded;
  if (form == ExecForm::Binary) {
    expanded = p.binary_expanded();
    prog = &expanded;
  }
  for (const Instruction& ins : prog->body) {
    for (const Term& t : ins.args) seq.push_back(t);
    seq.push_back(Term::var(ins.target));
  }
  return seq;
}

CacheSimResult simulate_lru(const Program& p, size_t capacity, ExecForm form) {
  CacheSimResult res;
  std::list<Block> lru;  // front = MRU
  std::unordered_map<uint64_t, std::list<Block>::iterator> pos;
  std::unordered_set<uint64_t> seen;

  for (const Block& b : touch_sequence(p, form)) {
    const uint64_t k = b.key();
    auto it = pos.find(k);
    if (it != pos.end()) {
      lru.splice(lru.begin(), lru, it->second);  // refresh to MRU
      continue;
    }
    // Not cached: constants and previously-seen blocks are loaded from
    // memory; the first touch of a variable is an in-cache allocation.
    const bool was_seen = seen.count(k) > 0;
    if (b.is_const() || was_seen) {
      ++res.loads;
      if (was_seen) ++res.reloads;
    }
    seen.insert(k);
    if (lru.size() == capacity) {
      const Block victim = lru.back();
      lru.pop_back();
      pos.erase(victim.key());
      ++res.evictions;
    }
    lru.push_front(b);
    pos[k] = lru.begin();
  }
  return res;
}

size_t io_cost(const Program& p, size_t capacity, ExecForm form) {
  return simulate_lru(p, capacity, form).io_cost();
}

size_t ccap(const Program& p, ExecForm form) {
  // LRU obeys the stack-inclusion property, so "no reload at capacity c" is
  // monotone in c; the answer is the maximum LRU stack distance over all
  // re-touches. An instruction additionally needs its whole footprint
  // {t1..tk, v} cached at once.
  std::vector<Block> stack;  // front (index 0) = MRU; small programs, O(n²) walk is fine
  size_t max_dist = 0;

  const Program* prog = &p;
  Program expanded;
  if (form == ExecForm::Binary) {
    expanded = p.binary_expanded();
    prog = &expanded;
  }

  for (const Instruction& ins : prog->body) {
    // Footprint: distinct blocks of this instruction.
    std::vector<Block> fp;
    for (const Term& t : ins.args)
      if (std::find(fp.begin(), fp.end(), t) == fp.end()) fp.push_back(t);
    const Term tgt = Term::var(ins.target);
    if (std::find(fp.begin(), fp.end(), tgt) == fp.end()) fp.push_back(tgt);
    max_dist = std::max(max_dist, fp.size());

    auto touch = [&](const Block& b) {
      auto it = std::find(stack.begin(), stack.end(), b);
      if (it != stack.end()) {
        const size_t dist = static_cast<size_t>(it - stack.begin()) + 1;
        max_dist = std::max(max_dist, dist);
        stack.erase(it);
      }
      stack.insert(stack.begin(), b);
    };
    for (const Term& t : ins.args) touch(t);
    touch(tgt);
  }
  return max_dist;
}

}  // namespace xorec::slp
