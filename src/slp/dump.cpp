#include "slp/dump.hpp"

#include <set>
#include <sstream>

namespace xorec::slp {

std::string to_dot(const CompGraph& g, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=BT;\n";

  std::set<uint32_t> used_consts;
  for (const auto& n : g.nodes)
    for (const Term& c : n.children)
      if (c.is_const()) used_consts.insert(c.id);
  for (uint32_t c : used_consts)
    os << "  c" << c << " [shape=box, label=\"c" << c << "\"];\n";

  for (size_t i = 0; i < g.nodes.size(); ++i) {
    os << "  v" << i << " [shape=" << (g.nodes[i].is_goal ? "doublecircle" : "circle")
       << ", label=\"v" << i << "\"];\n";
  }
  for (size_t i = 0; i < g.nodes.size(); ++i) {
    for (const Term& c : g.nodes[i].children) {
      os << "  " << (c.is_const() ? "c" : "v") << c.id << " -> v" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace xorec::slp
