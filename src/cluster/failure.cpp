#include "cluster/failure.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace xorec::cluster {

namespace {

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from the top 53 bits — exact in a double, stable
/// everywhere.
double unit(uint64_t bits) { return static_cast<double>(bits >> 11) * 0x1.0p-53; }

bool event_less(const FailureEvent& a, const FailureEvent& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.target < b.target;
}

}  // namespace

FailureTrace& FailureTrace::insert(FailureEvent ev) {
  events.insert(std::upper_bound(events.begin(), events.end(), ev, event_less), ev);
  return *this;
}

FailureTrace& FailureTrace::add_disk(double time_s, uint32_t disk) {
  return insert({time_s, FailureKind::Disk, disk});
}
FailureTrace& FailureTrace::add_node(double time_s, uint32_t node) {
  return insert({time_s, FailureKind::Node, node});
}
FailureTrace& FailureTrace::add_rack(double time_s, uint32_t rack) {
  return insert({time_s, FailureKind::Rack, rack});
}
FailureTrace& FailureTrace::add_disk_restore(double time_s, uint32_t disk) {
  return insert({time_s, FailureKind::DiskRestore, disk});
}
FailureTrace& FailureTrace::add_node_restore(double time_s, uint32_t node) {
  return insert({time_s, FailureKind::NodeRestore, node});
}
FailureTrace& FailureTrace::add_rack_restore(double time_s, uint32_t rack) {
  return insert({time_s, FailureKind::RackRestore, rack});
}

FailureTrace FailureTrace::poisson_storm(const Topology& topo, double rate_per_s,
                                         double duration_s, uint64_t seed,
                                         double node_fraction, double rack_fraction,
                                         double restore_delay_s) {
  if (rate_per_s <= 0 || duration_s <= 0)
    throw std::invalid_argument("poisson_storm: rate and duration must be positive");
  if (node_fraction < 0 || rack_fraction < 0 || node_fraction + rack_fraction > 1)
    throw std::invalid_argument("poisson_storm: fractions must be >= 0 and sum <= 1");
  if (restore_delay_s < 0)
    throw std::invalid_argument("poisson_storm: restore_delay_s must be >= 0");
  FailureTrace trace;
  uint64_t state = mix64(seed ^ 0x5707a11u);
  const auto next = [&] { return state = mix64(state); };
  double t = 0;
  for (;;) {
    // Inverse-CDF exponential inter-arrival; 1 - u keeps log's argument
    // strictly positive.
    t += -std::log(1.0 - unit(next())) / rate_per_s;
    if (t >= duration_s) break;
    const double what = unit(next());
    FailureEvent ev;
    ev.time_s = t;
    if (what < rack_fraction) {
      ev.kind = FailureKind::Rack;
      ev.target = static_cast<uint32_t>(next() % topo.racks);
    } else if (what < rack_fraction + node_fraction) {
      ev.kind = FailureKind::Node;
      ev.target = static_cast<uint32_t>(next() % topo.node_count());
    } else {
      ev.kind = FailureKind::Disk;
      ev.target = static_cast<uint32_t>(next() % topo.disk_count());
    }
    trace.insert(ev);
    if (restore_delay_s > 0) {
      // The matching re-admission: same target, kind shifted into the
      // restore range, fixed replacement delay (may land past duration_s —
      // the tail of the trace is devices coming back).
      FailureEvent restore = ev;
      restore.time_s = t + restore_delay_s;
      restore.kind = static_cast<FailureKind>(static_cast<uint8_t>(ev.kind) + 3);
      trace.insert(restore);
    }
  }
  return trace;
}

size_t FailureTrace::apply(const FailureEvent& ev, HealthMap& health) {
  switch (ev.kind) {
    case FailureKind::Disk: return health.fail_disk(ev.target);
    case FailureKind::Node: return health.fail_node(ev.target);
    case FailureKind::Rack: return health.fail_rack(ev.target);
    case FailureKind::DiskRestore: return health.restore_disk(ev.target);
    case FailureKind::NodeRestore: return health.restore_node(ev.target);
    case FailureKind::RackRestore: return health.restore_rack(ev.target);
  }
  throw std::logic_error("FailureTrace: unknown event kind");
}

uint64_t FailureTrace::fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const FailureEvent& ev : events) {
    uint64_t bits;
    static_assert(sizeof bits == sizeof ev.time_s);
    std::memcpy(&bits, &ev.time_s, sizeof bits);
    fold(bits);
    fold(static_cast<uint64_t>(ev.kind));
    fold(ev.target);
  }
  return h;
}

}  // namespace xorec::cluster
