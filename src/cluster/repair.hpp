// Cluster repair orchestrator: the fleet-scale consumer of the whole
// plan/cache/service stack. Given a chunk placement (cluster/placement.hpp)
// and a failure trace (cluster/failure.hpp), it drives every lost chunk back
// to full redundancy through a shared xorec::CodecService and accounts the
// network traffic the repairs move — the XORing-Elephants experiment: do
// locality-aware families (lrc, piggyback) beat plain RS on cross-rack
// repair bytes for the same failures?
//
// Scheduling model (deterministic discrete-event, virtual 1 s ticks):
//   - A failure event marks disks dead; chunks on them join their stripe's
//     lost set and the stripe enters the repair queue with priority =
//     remaining redundancy (parity count minus lost chunks): the stripe
//     closest to data loss repairs first.
//   - Per lost stripe the scheduler ENUMERATES candidate recovery plans via
//     Codec::plan_reconstruct — the full survivor set (where the reduced-
//     read families bring their own repair sets) plus data-first and
//     parity-first k-subsets for MDS codes — and scores each candidate's
//     read_set() against the stripe's placement: cross-rack strips cost
//     `cross_rack_penalty`, intra-rack strips cost 1. Cheapest plan wins.
//   - Per-node repair bandwidth is throttled by a deficit token bucket:
//     every node earns `node_bandwidth` bytes per tick (never banking more
//     than one tick), a job dispatches only while every involved node's
//     budget is positive, and a dispatched job debits its true byte cost
//     (budgets may go negative — oversized jobs still make progress, they
//     just block their nodes for the ticks it takes to repay).
//   - Dispatched repairs execute as BatchCoder futures through the shared
//     CodecService; the first `execute_stripes` jobs carry REAL payload
//     (deterministic seeded fragments) and are byte-verified end to end,
//     the rest are traffic-accounted at `chunk_bytes` scale so million-
//     chunk fleets stay tractable.
//
// Everything — placement, trace, candidate choice, destinations, tick
// schedule — is a pure function of the seeds, so one trace replayed over
// two codec families is the controlled experiment, and the report's
// decision_fingerprint makes "same trace -> byte-identical schedule"
// a one-comparison assertion.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/service.hpp"
#include "cluster/failure.hpp"
#include "cluster/placement.hpp"

namespace xorec::cluster {

struct RepairOptions {
  /// Registry spec of the stripe codec; its k + m must equal the
  /// placement's chunks_per_stripe.
  std::string spec = "rs(10,4)";
  /// Virtual bytes per chunk — the unit of traffic accounting and
  /// bandwidth throttling (not allocated; real payloads use exec_frag_len).
  uint64_t chunk_bytes = 64ull << 20;
  /// Per-node repair bandwidth, bytes per virtual second (tick).
  uint64_t node_bandwidth = 512ull << 20;
  /// Scoring weight of a cross-rack strip relative to an intra-rack one.
  double cross_rack_penalty = 4.0;
  /// How many dispatched repair jobs carry real payload through the
  /// CodecService and are byte-verified (0 = accounting only).
  size_t execute_stripes = 32;
  /// Real-payload fragment size (rounded up to the codec's geometry).
  size_t exec_frag_len = 4096;
  /// Seed for the deterministic payload generator.
  uint64_t seed = 1;
  /// Keep the per-job dispatch log in the report (tests, demos).
  bool record_jobs = false;
};

/// One dispatched stripe repair, in dispatch order.
struct RepairJob {
  uint64_t tick = 0;
  size_t stripe = 0;
  uint32_t redundancy_left = 0;  // parity count minus lost chunks, at dispatch
  std::vector<uint32_t> erased;  // chunk idxs rebuilt by this job
  uint32_t master_node = 0;      // repair master (destination of erased[0])
  size_t candidate = 0;          // index of the winning candidate plan
  uint64_t bytes_read = 0;
  uint64_t cross_rack_bytes_read = 0;
};

struct RepairReport {
  std::string spec;            // canonical codec spec repaired with
  std::string policy;          // placement policy name
  size_t stripes = 0;
  size_t chunks = 0;
  size_t failure_events = 0;
  size_t disks_failed = 0;
  size_t disks_restored = 0;   // devices re-admitted by restore events
  size_t chunks_lost = 0;      // distinct chunks that entered the lost set
  size_t chunks_readmitted = 0;  // lost chunks that became readable again
                                 // when their device was restored (no repair
                                 // traffic was spent on them)
  size_t chunks_repaired = 0;
  size_t chunks_unplaced = 0;  // repaired but no eligible disk was left
  size_t stripes_unrecoverable = 0;  // data loss: no candidate plan solved
  size_t repair_jobs = 0;
  size_t distinct_patterns = 0;  // (lost, readable) sets planned for
  size_t candidate_plans = 0;    // plans compiled/considered across patterns
  // Repair reads at strip and byte granularity (strip = chunk_bytes / w).
  size_t strips_read = 0;
  size_t cross_rack_strips = 0;
  size_t intra_rack_strips = 0;
  uint64_t bytes_read = 0;
  uint64_t cross_rack_bytes = 0;  // reads + redistribution moves across racks
  uint64_t intra_rack_bytes = 0;
  uint64_t bytes_written = 0;     // rebuilt chunk bytes (the repair output)
  uint64_t time_to_safe_ticks = 0;  // virtual ticks until every stripe healed
  size_t executed_stripes = 0;   // jobs that ran real payload via the service
  size_t verified_stripes = 0;   // of those, byte-verified against truth
  size_t verify_failures = 0;    // must stay 0
  uint64_t trace_fingerprint = 0;     // FailureTrace::fingerprint of the input
  uint64_t decision_fingerprint = 0;  // folds every scheduling decision
  std::vector<RepairJob> jobs;   // populated when RepairOptions::record_jobs

  double cross_rack_fraction() const {
    const uint64_t total = cross_rack_bytes + intra_rack_bytes;
    return total ? static_cast<double>(cross_rack_bytes) / static_cast<double>(total) : 0.0;
  }

  /// Emit this report as one JSON object (stable key order — byte-identical
  /// for identical runs), indented by `indent` spaces.
  void write_json(std::ostream& os, int indent = 0) const;
};

class RepairOrchestrator {
 public:
  /// Borrows the placement (mutated: repaired chunks move to replacement
  /// disks) and the service (repairs route through its pooled codec for
  /// `opt.spec`). The codec's k + m must match the placement geometry.
  RepairOrchestrator(PlacementRegistry& placement, CodecService& service,
                     RepairOptions opt);
  ~RepairOrchestrator();  // out of line: Pattern is incomplete here

  const RepairOptions& options() const { return opt_; }
  const Codec& codec() const { return handle_.codec(); }

  /// Drive the fleet through `trace` until every recoverable stripe is back
  /// to full redundancy; returns the traffic report. One orchestrator runs
  /// one trace (failures accumulate in its health map).
  RepairReport run(const FailureTrace& trace);

 private:
  struct Candidate;
  struct Pattern;

  Pattern& pattern_for(uint64_t lost_mask, uint64_t readable_mask);
  void execute_with_payload(const std::shared_ptr<const ReconstructPlan>& plan,
                            size_t stripe, RepairReport& report);

  PlacementRegistry& placement_;
  CodecService& service_;
  RepairOptions opt_;
  ServiceHandle handle_;
  std::vector<std::unique_ptr<Pattern>> patterns_;  // stable addresses
  std::map<std::pair<uint64_t, uint64_t>, Pattern*> pattern_index_;  // (lost, readable)
};

/// The controlled experiment: one fleet shape, one placement seed, ONE
/// failure trace — one report per codec spec, all served by the same
/// CodecService. Comparability across specs requires equal k + m (asserted).
std::vector<RepairReport> compare_families(const Topology& topo, PlacementPolicy policy,
                                           size_t stripes,
                                           const std::vector<std::string>& specs,
                                           const FailureTrace& trace,
                                           CodecService& service,
                                           const RepairOptions& base, uint64_t placement_seed);

/// Wrap reports plus the shared experiment parameters into one JSON
/// document (the BENCH_repair_traffic.json shape).
void write_comparison_json(std::ostream& os, const Topology& topo, PlacementPolicy policy,
                           size_t stripes, const FailureTrace& trace,
                           const std::vector<RepairReport>& reports);

/// "round_robin" / "rack_aware" / "random".
const char* policy_name(PlacementPolicy policy);

}  // namespace xorec::cluster
