#include "cluster/repair.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <ostream>
#include <queue>
#include <stdexcept>

namespace xorec::cluster {

namespace {

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a fold of one 64-bit word into a running decision fingerprint.
void fold(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

std::vector<uint32_t> ids_of_mask(uint64_t mask) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; mask; ++i, mask >>= 1)
    if (mask & 1) ids.push_back(i);
  return ids;
}

constexpr uint32_t kNoDisk = std::numeric_limits<uint32_t>::max();

}  // namespace

const char* policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::RoundRobin: return "round_robin";
    case PlacementPolicy::RackAware: return "rack_aware";
    case PlacementPolicy::Random: return "random";
  }
  return "unknown";
}

// ---- candidate plans per erasure pattern -----------------------------------

struct RepairOrchestrator::Candidate {
  std::shared_ptr<const ReconstructPlan> plan;
};

/// Every stripe with the same (lost, readable) chunk-idx sets shares one
/// candidate enumeration: the id-space patterns are few (one per distinct
/// failure shape), so the expensive plan compilation amortizes across the
/// fleet exactly the way the paper's compile-once thesis wants.
struct RepairOrchestrator::Pattern {
  uint64_t lost = 0, readable = 0;
  std::vector<Candidate> candidates;  // empty = pattern exceeds code tolerance
};

RepairOrchestrator::Pattern& RepairOrchestrator::pattern_for(uint64_t lost_mask,
                                                             uint64_t readable_mask) {
  const auto key = std::make_pair(lost_mask, readable_mask);
  if (const auto it = pattern_index_.find(key); it != pattern_index_.end())
    return *it->second;

  auto pat = std::make_unique<Pattern>();
  pat->lost = lost_mask;
  pat->readable = readable_mask;

  const Codec& codec = handle_.codec();
  const std::vector<uint32_t> erased = ids_of_mask(lost_mask);
  const std::vector<uint32_t> avail = ids_of_mask(readable_mask);
  const size_t k = codec.data_fragments();

  // Candidate survivor subsets, in fixed precedence order: the full set
  // first (reduced-read families pick their own minimal reads from it),
  // then — when there is a choice — the k-survivor data-first and
  // parity-first subsets MDS codes can decode from. Unsolvable subsets are
  // skipped (the codec is the authority); duplicates by actual read set are
  // folded so scoring only weighs genuinely different plans.
  std::vector<std::vector<uint32_t>> subsets;
  subsets.push_back(avail);
  if (avail.size() > k) {
    std::vector<uint32_t> data_first, parity_first;
    for (uint32_t id : avail)
      if (id < k) data_first.push_back(id);
    for (uint32_t id : avail)
      if (id >= k) parity_first.push_back(id);
    // data_first currently holds the data survivors; extend each ordering
    // with the other class (the loop below dedupes and truncates to k).
    std::vector<uint32_t> pf = parity_first;
    data_first.insert(data_first.end(), parity_first.begin(), parity_first.end());
    pf.insert(pf.end(), avail.begin(), avail.end());
    for (auto* subset : {&data_first, &pf}) {
      std::vector<uint32_t> s;
      for (uint32_t id : *subset) {
        if (std::find(s.begin(), s.end(), id) == s.end()) s.push_back(id);
        if (s.size() == k) break;
      }
      std::sort(s.begin(), s.end());
      if (s.size() == k && std::find(subsets.begin(), subsets.end(), s) == subsets.end())
        subsets.push_back(std::move(s));
    }
  }

  for (const std::vector<uint32_t>& subset : subsets) {
    std::shared_ptr<const ReconstructPlan> plan;
    try {
      plan = handle_.plan_reconstruct(subset, erased);
    } catch (const std::invalid_argument&) {
      continue;  // this subset cannot solve the pattern — not a candidate
    }
    const bool dup = std::any_of(
        pat->candidates.begin(), pat->candidates.end(), [&](const Candidate& c) {
          return c.plan->read_set().fragments == plan->read_set().fragments &&
                 c.plan->read_set().fragment_strips == plan->read_set().fragment_strips;
        });
    if (!dup) pat->candidates.push_back({std::move(plan)});
  }

  Pattern& ref = *pat;
  pattern_index_.emplace(key, &ref);
  patterns_.push_back(std::move(pat));
  return ref;
}

// ---- orchestrator ----------------------------------------------------------

RepairOrchestrator::RepairOrchestrator(PlacementRegistry& placement, CodecService& service,
                                       RepairOptions opt)
    : placement_(placement),
      service_(service),
      opt_(std::move(opt)),
      handle_(service.acquire(opt_.spec)) {
  const Codec& codec = handle_.codec();
  if (codec.total_fragments() != placement_.chunks_per_stripe())
    throw std::invalid_argument(
        "RepairOrchestrator: codec " + codec.name() + " has " +
        std::to_string(codec.total_fragments()) + " fragments but the placement holds " +
        std::to_string(placement_.chunks_per_stripe()) + " chunks per stripe");
  if (placement_.chunks_per_stripe() > 64)
    throw std::invalid_argument(
        "RepairOrchestrator: stripes wider than 64 chunks are not supported "
        "(lost sets are tracked as 64-bit masks)");
  if (opt_.chunk_bytes == 0 || opt_.node_bandwidth == 0)
    throw std::invalid_argument("RepairOrchestrator: chunk_bytes and node_bandwidth "
                                "must be positive");
}

RepairOrchestrator::~RepairOrchestrator() = default;

void RepairOrchestrator::execute_with_payload(
    const std::shared_ptr<const ReconstructPlan>& plan_ptr, size_t stripe,
    RepairReport& report) {
  const ReconstructPlan& plan = *plan_ptr;
  const Codec& codec = handle_.codec();
  const size_t n = codec.total_fragments();
  const size_t k = codec.data_fragments();
  const size_t unit = codec.fragment_multiple() * 8;
  const size_t frag_len = std::max(unit, (opt_.exec_frag_len + unit - 1) / unit * unit);

  // Deterministic ground-truth stripe: seeded data fragments, real parity
  // encoded through the service.
  std::vector<std::vector<uint8_t>> frags(n, std::vector<uint8_t>(frag_len));
  for (size_t f = 0; f < k; ++f) {
    uint64_t ctr = mix64(opt_.seed ^ mix64(stripe * 131 + f));
    for (size_t off = 0; off + 8 <= frag_len; off += 8) {
      const uint64_t v = ctr = mix64(ctr);
      std::memcpy(frags[f].data() + off, &v, 8);
    }
  }
  std::vector<const uint8_t*> data_ptrs;
  std::vector<uint8_t*> parity_ptrs;
  for (size_t f = 0; f < k; ++f) data_ptrs.push_back(frags[f].data());
  for (size_t f = k; f < n; ++f) parity_ptrs.push_back(frags[f].data());
  handle_.encode(data_ptrs.data(), parity_ptrs.data(), frag_len).get();

  // Survivor buffers parallel to the plan's available set, outputs parallel
  // to its erased set; one BatchCoder future on the pool's shard.
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : plan.available()) avail_ptrs.push_back(frags[id].data());
  std::vector<std::vector<uint8_t>> rebuilt(plan.erased().size(),
                                            std::vector<uint8_t>(frag_len, 0xCD));
  std::vector<uint8_t*> out_ptrs;
  for (auto& r : rebuilt) out_ptrs.push_back(r.data());
  handle_.reconstruct(plan_ptr, avail_ptrs.data(), out_ptrs.data(), frag_len).get();

  ++report.executed_stripes;
  bool ok = true;
  for (size_t i = 0; i < plan.erased().size(); ++i)
    ok = ok && rebuilt[i] == frags[plan.erased()[i]];
  if (ok)
    ++report.verified_stripes;
  else
    ++report.verify_failures;
}

RepairReport RepairOrchestrator::run(const FailureTrace& trace) {
  const Topology& topo = placement_.topology();
  const Codec& codec = handle_.codec();
  const uint32_t n = placement_.chunks_per_stripe();
  const uint32_t parity = static_cast<uint32_t>(codec.parity_fragments());
  const size_t stripes = placement_.stripe_count();
  const uint64_t strip_bytes =
      std::max<uint64_t>(1, opt_.chunk_bytes / codec.fragment_multiple());

  RepairReport report;
  report.spec = handle_.spec();
  report.policy = policy_name(placement_.policy());
  report.stripes = stripes;
  report.chunks = placement_.chunk_count();
  report.failure_events = trace.size();
  report.trace_fingerprint = trace.fingerprint();
  uint64_t& fp = report.decision_fingerprint;
  fp = 0xcbf29ce484222325ull;

  HealthMap health(topo);
  std::vector<uint64_t> lost(stripes, 0);
  // Why a stripe was dropped from the queue — restores can revive it, and an
  // unrecoverable revival must give back its stripes_unrecoverable count.
  enum : uint8_t { kAlive = 0, kUnrecoverable = 1, kUnplaced = 2 };
  std::vector<uint8_t> dead(stripes, kAlive);

  // Max-heap on (lost count, lower stripe id wins ties): the stripe with
  // the LEAST remaining redundancy repairs first. Entries are lazy — a
  // stripe re-damaged after being queued gets a fresh entry and the stale
  // one is skipped on pop.
  struct QEntry {
    uint32_t lost_count;
    size_t stripe;
  };
  const auto qless = [](const QEntry& a, const QEntry& b) {
    if (a.lost_count != b.lost_count) return a.lost_count < b.lost_count;
    return a.stripe > b.stripe;
  };
  std::priority_queue<QEntry, std::vector<QEntry>, decltype(qless)> queue(qless);

  // Deficit token bucket per node: earn node_bandwidth per tick (no
  // banking), dispatch only while positive, debit true cost.
  std::vector<int64_t> budget(topo.node_count(),
                              static_cast<int64_t>(opt_.node_bandwidth));

  size_t ei = 0;
  uint64_t tick = 0;
  uint64_t last_dispatch_tick = 0;
  bool any_dispatch = false;

  const auto absorb_event = [&](const FailureEvent& ev) {
    if (is_restore(ev.kind)) {
      report.disks_restored += FailureTrace::apply(ev, health);
      // A re-admitted device still holds every chunk repair had not yet
      // re-created elsewhere: clear those lost bits for free (no repair
      // traffic), revive stripes the scheduler had given up on, and requeue
      // whatever damage remains.
      for (size_t s = 0; s < stripes; ++s) {
        uint64_t mask = lost[s];
        if (!mask) continue;
        uint64_t back = 0;
        for (uint32_t i = 0; mask; ++i, mask >>= 1)
          if ((mask & 1) && health.disk_ok(placement_.disk_of(s, i)))
            back |= 1ull << i;
        if (!back) continue;
        lost[s] &= ~back;
        report.chunks_readmitted += static_cast<size_t>(std::popcount(back));
        if (dead[s] != kAlive) {
          if (dead[s] == kUnrecoverable) --report.stripes_unrecoverable;
          dead[s] = kAlive;  // chunks_unplaced stays: those repairs really
                             // had nowhere to land when they ran
        }
        if (lost[s])
          queue.push({static_cast<uint32_t>(std::popcount(lost[s])), s});
      }
      return;
    }
    report.disks_failed += FailureTrace::apply(ev, health);
    placement_.for_each_lost(health, [&](size_t s, uint32_t idx) {
      const uint64_t bit = 1ull << idx;
      if (lost[s] & bit) return;  // already tracked
      lost[s] |= bit;
      ++report.chunks_lost;
      if (dead[s] == kAlive)
        queue.push({static_cast<uint32_t>(std::popcount(lost[s])), s});
    });
  };

  while (ei < trace.events.size() || !queue.empty()) {
    while (ei < trace.events.size() &&
           trace.events[ei].time_s < static_cast<double>(tick + 1))
      absorb_event(trace.events[ei++]);

    // Dispatch in strict priority order; when the head job cannot proceed
    // (a throttled node), the tick ends — jumping the queue would starve
    // the lowest-redundancy stripe the ordering exists to protect.
    while (!queue.empty()) {
      const QEntry top = queue.top();
      if (dead[top.stripe] || lost[top.stripe] == 0 ||
          std::popcount(lost[top.stripe]) != static_cast<int>(top.lost_count)) {
        queue.pop();  // stale entry
        continue;
      }
      const size_t s = top.stripe;
      const uint64_t lost_mask = lost[s];
      uint64_t readable = 0;
      for (uint32_t i = 0; i < n; ++i)
        if (!(lost_mask & (1ull << i)) && health.disk_ok(placement_.disk_of(s, i)))
          readable |= 1ull << i;

      Pattern& pat = pattern_for(lost_mask, readable);
      if (pat.candidates.empty()) {
        // Exceeds the code's tolerance — data loss, unless a later restore
        // re-admits one of its devices (absorb_event revives the stripe and
        // gives this count back).
        ++report.stripes_unrecoverable;
        dead[s] = kUnrecoverable;
        queue.pop();
        continue;
      }

      const std::vector<uint32_t> erased = ids_of_mask(lost_mask);
      // The repair master is the replacement target of the first lost
      // chunk: survivors stream there, rebuilt siblings redistribute from
      // there. (Scouted without committing — bandwidth may defer the job.)
      const uint32_t master_disk = placement_.pick_replacement(s, erased[0], health);
      if (master_disk == kNoDisk) {
        // Fleet too degraded to place the repair anywhere; drop the stripe
        // from the queue so the run terminates, and report the gap.
        report.chunks_unplaced += erased.size();
        dead[s] = kUnplaced;
        queue.pop();
        continue;
      }
      const uint32_t master_node = topo.node_of_disk(master_disk);
      const uint32_t master_rack = topo.rack_of_node(master_node);

      // Score every candidate's read set against THIS stripe's placement:
      // cross-rack strips cost cross_rack_penalty, intra-rack strips 1.
      size_t best_c = 0;
      double best_score = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < pat.candidates.size(); ++c) {
        const PlanReadSet& reads = pat.candidates[c].plan->read_set();
        double score = 0;
        for (size_t i = 0; i < reads.fragments.size(); ++i) {
          const bool cross = placement_.rack_of(s, reads.fragments[i]) != master_rack;
          score += reads.fragment_strips[i] * (cross ? opt_.cross_rack_penalty : 1.0);
        }
        if (score < best_score) {
          best_score = score;
          best_c = c;
        }
      }
      const Candidate& chosen = pat.candidates[best_c];
      const PlanReadSet& reads = chosen.plan->read_set();

      // Throttle gate: every read source and the master must hold positive
      // budget. Redistribution targets are picked after commit (their
      // writes are debited then); the gate covers the read fan-in, which
      // dominates repair traffic.
      bool fits = budget[master_node] > 0;
      for (size_t i = 0; fits && i < reads.fragments.size(); ++i)
        fits = budget[placement_.node_of(s, reads.fragments[i])] > 0;
      if (!fits) break;  // head-of-line wait: retry next tick

      // ---- commit ----------------------------------------------------------
      queue.pop();
      uint64_t job_read = 0, job_cross_read = 0;
      for (size_t i = 0; i < reads.fragments.size(); ++i) {
        const uint32_t src_node = placement_.node_of(s, reads.fragments[i]);
        const uint64_t bytes = reads.fragment_strips[i] * strip_bytes;
        const bool cross = topo.rack_of_node(src_node) != master_rack;
        budget[src_node] -= static_cast<int64_t>(bytes);
        job_read += bytes;
        report.strips_read += reads.fragment_strips[i];
        (cross ? report.cross_rack_strips : report.intra_rack_strips) +=
            reads.fragment_strips[i];
        (cross ? report.cross_rack_bytes : report.intra_rack_bytes) += bytes;
        if (cross) job_cross_read += bytes;
      }
      budget[master_node] -= static_cast<int64_t>(job_read);
      report.bytes_read += job_read;

      // Re-home every lost chunk: the first onto the master itself, the
      // rest onto their own replacements (committed one by one so each
      // pick sees the previous one's node as taken), redistribution bytes
      // debited against master + destination.
      fold(fp, tick);
      fold(fp, s);
      fold(fp, lost_mask);
      fold(fp, best_c);
      for (size_t i = 0; i < erased.size(); ++i) {
        uint32_t dest = i == 0 ? master_disk : placement_.pick_replacement(s, erased[i], health);
        if (dest == kNoDisk) {
          ++report.chunks_unplaced;
          lost[s] &= ~(1ull << erased[i]);
          continue;
        }
        placement_.move_chunk(s, erased[i], dest);
        lost[s] &= ~(1ull << erased[i]);
        ++report.chunks_repaired;
        report.bytes_written += opt_.chunk_bytes;
        const uint32_t dest_node = topo.node_of_disk(dest);
        if (dest_node != master_node) {
          const bool cross = topo.rack_of_node(dest_node) != master_rack;
          (cross ? report.cross_rack_bytes : report.intra_rack_bytes) += opt_.chunk_bytes;
          budget[master_node] -= static_cast<int64_t>(opt_.chunk_bytes);
          budget[dest_node] -= static_cast<int64_t>(opt_.chunk_bytes);
        }
        fold(fp, dest);
      }
      fold(fp, job_read);

      ++report.repair_jobs;
      any_dispatch = true;
      last_dispatch_tick = tick;
      if (report.executed_stripes < opt_.execute_stripes)
        execute_with_payload(chosen.plan, s, report);
      if (opt_.record_jobs) {
        RepairJob job;
        job.tick = tick;
        job.stripe = s;
        job.redundancy_left = parity >= erased.size()
                                  ? parity - static_cast<uint32_t>(erased.size())
                                  : 0;
        job.erased = erased;
        job.master_node = master_node;
        job.candidate = best_c;
        job.bytes_read = job_read;
        job.cross_rack_bytes_read = job_cross_read;
        report.jobs.push_back(std::move(job));
      }
    }

    // Advance virtual time; skip idle gaps straight to the next event.
    if (queue.empty() && ei < trace.events.size()) {
      const uint64_t next_tick =
          static_cast<uint64_t>(std::max(0.0, std::floor(trace.events[ei].time_s)));
      tick = std::max(tick + 1, next_tick);
    } else {
      ++tick;
    }
    for (int64_t& b : budget)
      b = std::min<int64_t>(static_cast<int64_t>(opt_.node_bandwidth),
                            b + static_cast<int64_t>(opt_.node_bandwidth));
  }

  service_.flush();
  report.time_to_safe_ticks = any_dispatch ? last_dispatch_tick + 1 : 0;
  report.distinct_patterns = patterns_.size();
  for (const auto& pat : patterns_) report.candidate_plans += pat->candidates.size();
  return report;
}

// ---- comparison + JSON -----------------------------------------------------

std::vector<RepairReport> compare_families(const Topology& topo, PlacementPolicy policy,
                                           size_t stripes,
                                           const std::vector<std::string>& specs,
                                           const FailureTrace& trace,
                                           CodecService& service,
                                           const RepairOptions& base,
                                           uint64_t placement_seed) {
  std::vector<RepairReport> reports;
  size_t expected_n = 0;
  for (const std::string& spec : specs) {
    RepairOptions opt = base;
    opt.spec = spec;
    const size_t n = service.acquire(spec).codec().total_fragments();
    if (expected_n == 0) expected_n = n;
    if (n != expected_n)
      throw std::invalid_argument("compare_families: spec \"" + spec + "\" has " +
                                  std::to_string(n) + " fragments per stripe, others " +
                                  std::to_string(expected_n) +
                                  " — traffic is only comparable at equal k + m");
    PlacementRegistry placement(topo, static_cast<uint32_t>(n), policy, placement_seed);
    placement.add_stripes(stripes);
    RepairOrchestrator orch(placement, service, opt);
    reports.push_back(orch.run(trace));
  }
  return reports;
}

namespace {

void pad(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os.put(' ');
}

}  // namespace

void RepairReport::write_json(std::ostream& os, int indent) const {
  const auto field = [&](const char* key, auto value, bool last = false) {
    pad(os, indent + 2);
    os << "\"" << key << "\": " << value << (last ? "\n" : ",\n");
  };
  pad(os, indent);
  os << "{\n";
  pad(os, indent + 2);
  os << "\"spec\": \"" << spec << "\",\n";
  pad(os, indent + 2);
  os << "\"policy\": \"" << policy << "\",\n";
  field("stripes", stripes);
  field("chunks", chunks);
  field("failure_events", failure_events);
  field("disks_failed", disks_failed);
  field("disks_restored", disks_restored);
  field("chunks_lost", chunks_lost);
  field("chunks_readmitted", chunks_readmitted);
  field("chunks_repaired", chunks_repaired);
  field("chunks_unplaced", chunks_unplaced);
  field("stripes_unrecoverable", stripes_unrecoverable);
  field("repair_jobs", repair_jobs);
  field("distinct_patterns", distinct_patterns);
  field("candidate_plans", candidate_plans);
  field("strips_read", strips_read);
  field("cross_rack_strips", cross_rack_strips);
  field("intra_rack_strips", intra_rack_strips);
  field("bytes_read", bytes_read);
  field("cross_rack_bytes", cross_rack_bytes);
  field("intra_rack_bytes", intra_rack_bytes);
  field("bytes_written", bytes_written);
  field("cross_rack_fraction", cross_rack_fraction());
  field("time_to_safe_ticks", time_to_safe_ticks);
  field("executed_stripes", executed_stripes);
  field("verified_stripes", verified_stripes);
  field("verify_failures", verify_failures);
  field("trace_fingerprint", trace_fingerprint);
  field("decision_fingerprint", decision_fingerprint, /*last=*/true);
  pad(os, indent);
  os << "}";
}

void write_comparison_json(std::ostream& os, const Topology& topo, PlacementPolicy policy,
                           size_t stripes, const FailureTrace& trace,
                           const std::vector<RepairReport>& reports) {
  os << "{\n";
  os << "  \"bench\": \"repair_traffic\",\n";
  os << "  \"topology\": {\"racks\": " << topo.racks
     << ", \"nodes_per_rack\": " << topo.nodes_per_rack
     << ", \"disks_per_node\": " << topo.disks_per_node << "},\n";
  os << "  \"policy\": \"" << policy_name(policy) << "\",\n";
  os << "  \"stripes\": " << stripes << ",\n";
  os << "  \"trace\": {\"events\": " << trace.size()
     << ", \"fingerprint\": " << trace.fingerprint() << "},\n";
  os << "  \"families\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    reports[i].write_json(os, 4);
    os << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  // The flat record view of the same numbers, in the shared BENCH_*.json
  // schema (name/config/metric/value) every bench artifact carries — one
  // parser serves all artifacts.
  os << "  \"records\": [\n";
  const std::pair<const char*, uint64_t (*)(const RepairReport&)> metrics[] = {
      {"chunks_repaired", [](const RepairReport& r) { return static_cast<uint64_t>(r.chunks_repaired); }},
      {"chunks_readmitted", [](const RepairReport& r) { return static_cast<uint64_t>(r.chunks_readmitted); }},
      {"strips_read", [](const RepairReport& r) { return static_cast<uint64_t>(r.strips_read); }},
      {"bytes_read", [](const RepairReport& r) { return r.bytes_read; }},
      {"cross_rack_bytes", [](const RepairReport& r) { return r.cross_rack_bytes; }},
      {"time_to_safe_ticks", [](const RepairReport& r) { return r.time_to_safe_ticks; }},
  };
  bool first = true;
  for (const RepairReport& r : reports)
    for (const auto& [metric, get] : metrics) {
      if (!first) os << ",\n";
      first = false;
      os << "    {\"name\": \"repair_traffic\", \"config\": \"" << r.spec
         << "\", \"metric\": \"" << metric << "\", \"value\": " << get(r) << "}";
    }
  os << "\n  ]\n}\n";
}

}  // namespace xorec::cluster
