#include "cluster/placement.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>

namespace xorec::cluster {

namespace {

/// splitmix64 — the usual seeded stateless mixer; stable across platforms
/// (unlike std::uniform_int_distribution, whose mapping is
/// implementation-defined), which the byte-identical-trace guarantee needs.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PlacementRegistry::PlacementRegistry(Topology topo, uint32_t chunks_per_stripe,
                                     PlacementPolicy policy, uint64_t seed)
    : topo_(topo), n_(chunks_per_stripe), policy_(policy), seed_(seed) {
  if (n_ == 0) throw std::invalid_argument("PlacementRegistry: chunks_per_stripe == 0");
  if (n_ > topo_.node_count())
    throw std::invalid_argument("PlacementRegistry: a stripe needs " + std::to_string(n_) +
                                " distinct nodes but the fleet has " +
                                std::to_string(topo_.node_count()));
  disk_load_.assign(topo_.disk_count(), 0);
}

uint32_t PlacementRegistry::place_one(size_t stripe, uint32_t idx,
                                      const std::vector<uint32_t>& used_nodes) {
  const auto node_used = [&](uint32_t node) {
    return std::find(used_nodes.begin(), used_nodes.end(), node) != used_nodes.end();
  };
  // Least-loaded disk of `node` (ties to the lowest id).
  const auto best_disk_of = [&](uint32_t node) {
    const uint32_t first = topo_.first_disk_of_node(node);
    uint32_t best = first;
    for (uint32_t d = first + 1; d < first + topo_.disks_per_node; ++d)
      if (disk_load_[d] < disk_load_[best]) best = d;
    return best;
  };

  switch (policy_) {
    case PlacementPolicy::RoundRobin: {
      uint32_t node = static_cast<uint32_t>((stripe + idx) % topo_.node_count());
      while (node_used(node)) node = (node + 1) % topo_.node_count();
      return best_disk_of(node);
    }
    case PlacementPolicy::RackAware: {
      // Walk racks from (stripe + idx) mod racks until one has a free node;
      // inside, the least-loaded free node, then its least-loaded disk.
      for (uint32_t probe = 0; probe < topo_.racks; ++probe) {
        const uint32_t rack =
            static_cast<uint32_t>((stripe + idx + probe) % topo_.racks);
        uint32_t best_node = std::numeric_limits<uint32_t>::max();
        uint32_t best_load = std::numeric_limits<uint32_t>::max();
        const uint32_t first = topo_.first_node_of_rack(rack);
        for (uint32_t node = first; node < first + topo_.nodes_per_rack; ++node) {
          if (node_used(node)) continue;
          const uint32_t load = disk_load_[best_disk_of(node)];
          if (load < best_load) {
            best_load = load;
            best_node = node;
          }
        }
        if (best_node != std::numeric_limits<uint32_t>::max())
          return best_disk_of(best_node);
      }
      throw std::logic_error("PlacementRegistry: no free node (checked in ctor)");
    }
    case PlacementPolicy::Random: {
      uint64_t h = mix64(seed_ ^ mix64(stripe * 0x10001 + idx));
      for (;;) {
        const uint32_t node = static_cast<uint32_t>(h % topo_.node_count());
        if (!node_used(node)) return best_disk_of(node);
        h = mix64(h);
      }
    }
  }
  throw std::logic_error("PlacementRegistry: unknown policy");
}

void PlacementRegistry::add_stripes(size_t count) {
  const size_t first = stripe_count();
  chunk_disk_.reserve(chunk_disk_.size() + count * n_);
  std::vector<uint32_t> used_nodes;
  used_nodes.reserve(n_);
  for (size_t s = first; s < first + count; ++s) {
    used_nodes.clear();
    for (uint32_t i = 0; i < n_; ++i) {
      const uint32_t disk = place_one(s, i, used_nodes);
      used_nodes.push_back(topo_.node_of_disk(disk));
      chunk_disk_.push_back(disk);
      ++disk_load_[disk];
    }
  }
}

std::vector<uint32_t> PlacementRegistry::rack_profile(size_t stripe) const {
  std::vector<uint32_t> per_rack(topo_.racks, 0);
  for (uint32_t i = 0; i < n_; ++i) ++per_rack[rack_of(stripe, i)];
  return per_rack;
}

void PlacementRegistry::move_chunk(size_t stripe, uint32_t idx, uint32_t new_disk) {
  uint32_t& slot = chunk_disk_[stripe * n_ + idx];
  --disk_load_[slot];
  slot = new_disk;
  ++disk_load_[new_disk];
}

uint32_t PlacementRegistry::pick_replacement(size_t stripe, uint32_t idx,
                                             const HealthMap& health) const {
  const std::vector<uint32_t> per_rack = rack_profile(stripe);
  // Nodes already carrying one of the stripe's OTHER chunks are off limits
  // (idx's own failed node may be reused only if another disk there lives —
  // simplest to exclude it too; its disk is failed anyway).
  std::vector<uint32_t> used_nodes;
  used_nodes.reserve(n_);
  for (uint32_t i = 0; i < n_; ++i) used_nodes.push_back(node_of(stripe, i));

  uint32_t best = std::numeric_limits<uint32_t>::max();
  uint32_t best_rack_chunks = 0, best_load = 0;
  for (uint32_t d = 0; d < topo_.disk_count(); ++d) {
    if (!health.disk_ok(d)) continue;
    const uint32_t node = topo_.node_of_disk(d);
    if (std::find(used_nodes.begin(), used_nodes.end(), node) != used_nodes.end())
      continue;
    const uint32_t rack_chunks = per_rack[topo_.rack_of_disk(d)];
    const uint32_t load = disk_load_[d];
    if (best == std::numeric_limits<uint32_t>::max() ||
        std::tie(rack_chunks, load, d) < std::tie(best_rack_chunks, best_load, best)) {
      best = d;
      best_rack_chunks = rack_chunks;
      best_load = load;
    }
  }
  return best;
}

void PlacementRegistry::for_each_lost(const HealthMap& health,
                                      const std::function<void(size_t, uint32_t)>& fn) const {
  for (size_t c = 0; c < chunk_disk_.size(); ++c)
    if (!health.disk_ok(chunk_disk_[c])) fn(c / n_, static_cast<uint32_t>(c % n_));
}

}  // namespace xorec::cluster
