// Chunk-placement registry: which disk holds chunk `idx` of stripe `s`, for
// millions of chunks. One uint32 disk id per chunk in a flat array — 4 bytes
// per chunk record, so a 10M-chunk fleet fits in 40 MB with zero pointer
// chasing — plus per-disk load counters for placement and replacement
// decisions. Everything is deterministic: the same (topology, policy, seed,
// stripe count) always yields the same placement, which is what lets two
// codec families be compared on an identical failure trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/topology.hpp"

namespace xorec::cluster {

enum class PlacementPolicy : uint8_t {
  /// Chunk i of stripe s on node (s + i) mod nodes: distinct nodes, but
  /// consecutive — a stripe's chunks pile into few racks. The rack-oblivious
  /// baseline a rack failure punishes.
  RoundRobin,
  /// Chunk i of stripe s in rack (s + i) mod racks, least-loaded node/disk
  /// inside: a stripe spreads over min(n, racks) racks, so one rack failure
  /// costs each stripe at most ceil(n / racks) chunks.
  RackAware,
  /// Seeded uniform node draw (distinct nodes per stripe), least-loaded
  /// disk inside.
  Random,
};

class PlacementRegistry {
 public:
  /// `chunks_per_stripe` is the codec's k + m; must fit distinct nodes.
  PlacementRegistry(Topology topo, uint32_t chunks_per_stripe, PlacementPolicy policy,
                    uint64_t seed);

  const Topology& topology() const { return topo_; }
  PlacementPolicy policy() const { return policy_; }
  uint32_t chunks_per_stripe() const { return n_; }
  size_t stripe_count() const { return chunk_disk_.size() / n_; }
  size_t chunk_count() const { return chunk_disk_.size(); }

  /// Place `count` more stripes under the registry's policy.
  void add_stripes(size_t count);

  uint32_t disk_of(size_t stripe, uint32_t idx) const {
    return chunk_disk_[stripe * n_ + idx];
  }
  uint32_t node_of(size_t stripe, uint32_t idx) const {
    return topo_.node_of_disk(disk_of(stripe, idx));
  }
  uint32_t rack_of(size_t stripe, uint32_t idx) const {
    return topo_.rack_of_disk(disk_of(stripe, idx));
  }

  /// Chunks each disk currently holds.
  uint32_t disk_load(uint32_t disk) const { return disk_load_[disk]; }

  /// Stripe's chunk count per rack (index = rack id) — the locality profile
  /// replacement selection and repair scoring read.
  std::vector<uint32_t> rack_profile(size_t stripe) const;

  /// Re-home chunk (stripe, idx) onto `disk` (a completed repair).
  void move_chunk(size_t stripe, uint32_t idx, uint32_t new_disk);

  /// The deterministic replacement target for a lost chunk: a healthy disk
  /// on a node holding no other chunk of this stripe, preferring the rack
  /// with the fewest of the stripe's chunks (restores spread), then the
  /// least-loaded disk, then the lowest id. Returns UINT32_MAX when no
  /// eligible disk is left (fleet too degraded).
  uint32_t pick_replacement(size_t stripe, uint32_t idx, const HealthMap& health) const;

  /// Invoke fn(stripe, idx) for every chunk whose disk is failed — a flat
  /// scan (cheap even at millions of chunks), run once per failure event.
  void for_each_lost(const HealthMap& health,
                     const std::function<void(size_t, uint32_t)>& fn) const;

 private:
  uint32_t place_one(size_t stripe, uint32_t idx, const std::vector<uint32_t>& used_nodes);

  Topology topo_;
  uint32_t n_;
  PlacementPolicy policy_;
  uint64_t seed_;
  std::vector<uint32_t> chunk_disk_;  // stripe-major: chunk (s, i) at s*n + i
  std::vector<uint32_t> disk_load_;
};

}  // namespace xorec::cluster
