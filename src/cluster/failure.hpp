// Failure injection for the cluster repair orchestrator: a FailureTrace is
// an immutable, time-sorted list of device failures — single disk, whole
// node, correlated rack — either scripted one event at a time or drawn as a
// Poisson "failure storm". Generation is fully deterministic and PORTABLE:
// the storm uses an explicit splitmix64 + inverse-CDF exponential draw, not
// std::*_distribution (whose value mapping is implementation-defined), so
// the same seed yields byte-identical traces on every compiler. A trace
// fingerprint makes that testable in one comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"

namespace xorec::cluster {

/// Failure kinds 0-2 take devices out; restore kinds 3-5 re-admit them
/// (PR 6 follow-up: a repaired/replaced device returns to service instead
/// of failures only accumulating). The numbering extends the original enum,
/// so failure-only traces keep their historical fingerprints.
enum class FailureKind : uint8_t {
  Disk = 0,
  Node = 1,
  Rack = 2,
  DiskRestore = 3,
  NodeRestore = 4,
  RackRestore = 5,
};

constexpr bool is_restore(FailureKind kind) { return kind >= FailureKind::DiskRestore; }

struct FailureEvent {
  double time_s = 0;  // virtual seconds from trace start
  FailureKind kind = FailureKind::Disk;
  uint32_t target = 0;  // disk / node / rack id, per kind

  bool operator==(const FailureEvent&) const = default;
};

struct FailureTrace {
  std::vector<FailureEvent> events;  // kept sorted by (time, kind, target)

  FailureTrace& add_disk(double time_s, uint32_t disk);
  FailureTrace& add_node(double time_s, uint32_t node);
  FailureTrace& add_rack(double time_s, uint32_t rack);
  FailureTrace& add_disk_restore(double time_s, uint32_t disk);
  FailureTrace& add_node_restore(double time_s, uint32_t node);
  FailureTrace& add_rack_restore(double time_s, uint32_t rack);

  /// A Poisson failure storm: events arrive with exponential inter-arrival
  /// times at `rate_per_s` for `duration_s` virtual seconds; each event is a
  /// node failure with probability `node_fraction`, a whole-rack failure
  /// with `rack_fraction`, and a single disk otherwise. Targets are drawn
  /// uniformly over the topology. When `restore_delay_s` > 0, every failure
  /// spawns the matching restore event `restore_delay_s` virtual seconds
  /// later (devices return to service after a fixed replacement time); the
  /// default 0 reproduces the historical failure-only traces bit-for-bit.
  /// Deterministic per seed.
  static FailureTrace poisson_storm(const Topology& topo, double rate_per_s,
                                    double duration_s, uint64_t seed,
                                    double node_fraction = 0.25,
                                    double rack_fraction = 0.05,
                                    double restore_delay_s = 0);

  /// Apply one event to a health map; returns the disks whose state changed
  /// (newly failed for failure kinds, newly healthy for restore kinds).
  static size_t apply(const FailureEvent& ev, HealthMap& health);

  size_t size() const { return events.size(); }
  double duration() const { return events.empty() ? 0.0 : events.back().time_s; }

  /// FNV-1a over every event's (time bits, kind, target) — two traces are
  /// byte-identical iff fingerprints match (the determinism assertion).
  uint64_t fingerprint() const;

 private:
  FailureTrace& insert(FailureEvent ev);
};

}  // namespace xorec::cluster
