// Simulated fleet topology for the cluster repair orchestrator: a fixed
// racks × nodes × disks grid with pure-arithmetic id mapping (no per-device
// objects), plus a disk-granular health map failures are injected into.
//
// Ids are dense and hierarchical:
//   disk d  ->  node d / disks_per_node  ->  rack node / nodes_per_rack
// so a chunk record needs only its disk id (4 bytes) and every locality
// question — "is this read cross-rack?" — is integer division away. Node and
// rack failures are modeled as failing every disk underneath; a chunk is
// readable iff its disk is healthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace xorec::cluster {

struct Topology {
  uint32_t racks = 0;
  uint32_t nodes_per_rack = 0;
  uint32_t disks_per_node = 0;

  Topology() = default;
  Topology(uint32_t racks_, uint32_t nodes_per_rack_, uint32_t disks_per_node_)
      : racks(racks_), nodes_per_rack(nodes_per_rack_), disks_per_node(disks_per_node_) {
    if (!racks || !nodes_per_rack || !disks_per_node)
      throw std::invalid_argument("Topology: racks, nodes_per_rack and disks_per_node "
                                  "must all be >= 1");
  }

  uint32_t node_count() const { return racks * nodes_per_rack; }
  uint32_t disk_count() const { return node_count() * disks_per_node; }

  uint32_t node_of_disk(uint32_t disk) const { return disk / disks_per_node; }
  uint32_t rack_of_node(uint32_t node) const { return node / nodes_per_rack; }
  uint32_t rack_of_disk(uint32_t disk) const { return rack_of_node(node_of_disk(disk)); }

  uint32_t first_disk_of_node(uint32_t node) const { return node * disks_per_node; }
  uint32_t first_node_of_rack(uint32_t rack) const { return rack * nodes_per_rack; }
};

/// Which disks are alive right now. Failures accumulate until a restore
/// event re-admits the device (a repaired or replaced disk/node/rack returns
/// to service wiped — its chunks still live wherever repair re-created them,
/// but chunks NOT yet repaired become readable again).
class HealthMap {
 public:
  explicit HealthMap(const Topology& topo)
      : topo_(topo), disk_ok_(topo.disk_count(), true) {}

  const Topology& topology() const { return topo_; }

  bool disk_ok(uint32_t disk) const { return disk_ok_[disk]; }
  /// A node serves reads/writes iff at least one of its disks is healthy;
  /// callers placing chunks still check the specific disk.
  bool node_ok(uint32_t node) const {
    const uint32_t first = topo_.first_disk_of_node(node);
    for (uint32_t d = first; d < first + topo_.disks_per_node; ++d)
      if (disk_ok_[d]) return true;
    return false;
  }

  /// Fail one disk / every disk of a node / every disk of a rack. Returns
  /// the number of disks that transitioned healthy -> failed (0 when the
  /// target was already fully failed — storms may re-hit a device).
  size_t fail_disk(uint32_t disk) {
    if (disk >= disk_ok_.size()) throw std::out_of_range("HealthMap: disk id out of range");
    if (!disk_ok_[disk]) return 0;
    disk_ok_[disk] = false;
    ++failed_disks_;
    return 1;
  }
  size_t fail_node(uint32_t node) {
    if (node >= topo_.node_count())
      throw std::out_of_range("HealthMap: node id out of range");
    size_t n = 0;
    const uint32_t first = topo_.first_disk_of_node(node);
    for (uint32_t d = first; d < first + topo_.disks_per_node; ++d) n += fail_disk(d);
    return n;
  }
  size_t fail_rack(uint32_t rack) {
    if (rack >= topo_.racks) throw std::out_of_range("HealthMap: rack id out of range");
    size_t n = 0;
    const uint32_t first = topo_.first_node_of_rack(rack);
    for (uint32_t node = first; node < first + topo_.nodes_per_rack; ++node)
      n += fail_node(node);
    return n;
  }

  /// Re-admit one disk / every disk of a node / every disk of a rack.
  /// Returns the number of disks that transitioned failed -> healthy (0 when
  /// the target was already fully healthy — restores may re-hit a device).
  size_t restore_disk(uint32_t disk) {
    if (disk >= disk_ok_.size()) throw std::out_of_range("HealthMap: disk id out of range");
    if (disk_ok_[disk]) return 0;
    disk_ok_[disk] = true;
    --failed_disks_;
    return 1;
  }
  size_t restore_node(uint32_t node) {
    if (node >= topo_.node_count())
      throw std::out_of_range("HealthMap: node id out of range");
    size_t n = 0;
    const uint32_t first = topo_.first_disk_of_node(node);
    for (uint32_t d = first; d < first + topo_.disks_per_node; ++d) n += restore_disk(d);
    return n;
  }
  size_t restore_rack(uint32_t rack) {
    if (rack >= topo_.racks) throw std::out_of_range("HealthMap: rack id out of range");
    size_t n = 0;
    const uint32_t first = topo_.first_node_of_rack(rack);
    for (uint32_t node = first; node < first + topo_.nodes_per_rack; ++node)
      n += restore_node(node);
    return n;
  }

  size_t failed_disks() const { return failed_disks_; }
  size_t healthy_disks() const { return disk_ok_.size() - failed_disks_; }

 private:
  Topology topo_;
  std::vector<bool> disk_ok_;
  size_t failed_disks_ = 0;
};

}  // namespace xorec::cluster
