#include "baseline/zhou_tian.hpp"

#include <algorithm>
#include <stdexcept>

namespace xorec::baseline {

using bitmatrix::BitMatrix;
using bitmatrix::BitRow;
using slp::Instruction;
using slp::Program;
using slp::Term;

Program incremental_schedule(const BitMatrix& m, std::string name) {
  Program p;
  p.name = std::move(name);
  p.num_consts = static_cast<uint32_t>(m.cols());
  p.num_vars = static_cast<uint32_t>(m.rows());

  for (size_t r = 0; r < m.rows(); ++r) {
    const BitRow& row = m.row(r);
    const size_t direct_terms = row.popcount();
    if (direct_terms == 0)
      throw std::invalid_argument("incremental_schedule: zero row");

    // Nearest previously computed output row: r = base ⊕ (diff strips);
    // term count = 1 + hamming(row, base).
    size_t best_terms = direct_terms;
    size_t best_base = SIZE_MAX;
    for (size_t b = 0; b < r; ++b) {
      const size_t h = row.xor_popcount(m.row(b));
      if (1 + h < best_terms) {
        best_terms = 1 + h;
        best_base = b;
      }
    }

    Instruction ins;
    ins.target = static_cast<uint32_t>(r);
    if (best_base == SIZE_MAX) {
      for (uint32_t c : row.ones()) ins.args.push_back(Term::constant(c));
    } else {
      ins.args.push_back(Term::var(static_cast<uint32_t>(best_base)));
      BitRow diff = row;
      diff ^= m.row(best_base);
      for (uint32_t c : diff.ones()) ins.args.push_back(Term::constant(c));
    }
    p.body.push_back(std::move(ins));
    p.outputs.push_back(static_cast<uint32_t>(r));
  }
  return p;
}

Program reorder_for_locality(const Program& p) {
  if (!p.is_ssa())
    throw std::invalid_argument("reorder_for_locality: program must be SSA");
  const size_t n = p.body.size();

  // Dependency counts: instruction i depends on instruction defining var v.
  std::vector<uint32_t> def_of(p.num_vars, UINT32_MAX);
  for (uint32_t i = 0; i < n; ++i) def_of[p.body[i].target] = i;
  std::vector<uint32_t> deps_left(n, 0);
  std::vector<std::vector<uint32_t>> dependents(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (const Term& t : p.body[i].args) {
      if (!t.is_var()) continue;
      ++deps_left[i];
      dependents[def_of[t.id]].push_back(i);
    }
  }

  std::vector<bool> scheduled(n, false);
  std::vector<uint32_t> order;
  order.reserve(n);

  auto shared_terms = [&](uint32_t a, uint32_t b) {
    size_t shared = 0;
    for (const Term& x : p.body[a].args)
      for (const Term& y : p.body[b].args)
        if (x == y) ++shared;
    return shared;
  };

  uint32_t prev = UINT32_MAX;
  for (size_t step = 0; step < n; ++step) {
    uint32_t best = UINT32_MAX;
    size_t best_score = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (scheduled[i] || deps_left[i] != 0) continue;
      // Also reward reading the value the previous instruction just wrote.
      size_t score = 1;
      if (prev != UINT32_MAX) {
        score += shared_terms(prev, i);
        for (const Term& t : p.body[i].args)
          if (t.is_var() && t.id == p.body[prev].target) score += 2;
      }
      if (best == UINT32_MAX || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    scheduled[best] = true;
    order.push_back(best);
    for (uint32_t d : dependents[best]) --deps_left[d];
    prev = best;
  }

  Program out;
  out.num_consts = p.num_consts;
  out.num_vars = p.num_vars;
  out.outputs = p.outputs;
  out.name = p.name.empty() ? p.name : p.name + "+reorder";
  for (uint32_t i : order) out.body.push_back(p.body[i]);
  return out;
}

}  // namespace xorec::baseline
