#include "baseline/isal_style.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "ec/repair_layout.hpp"
#include "kernel/xor_kernel.hpp"

#if defined(XOREC_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace xorec::baseline {

std::vector<uint8_t> build_gf_tables(const gf::Matrix& coeffs) {
  const size_t m = coeffs.rows(), k = coeffs.cols();
  std::vector<uint8_t> t(m * k * 64);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      uint8_t* e = t.data() + (i * k + j) * 64;
      const uint8_t c = coeffs.at(i, j);
      for (int x = 0; x < 16; ++x) {
        const uint8_t lo = gf::mul(c, static_cast<uint8_t>(x));
        const uint8_t hi = gf::mul(c, static_cast<uint8_t>(x << 4));
        e[x] = lo;
        e[16 + x] = lo;   // low table duplicated across both AVX2 lanes
        e[32 + x] = hi;
        e[48 + x] = hi;
      }
    }
  }
  return t;
}

void gf_dot_prod_scalar(const gf::Matrix& coeffs, const uint8_t* const* src,
                        uint8_t* const* dst, size_t len) {
  const size_t m = coeffs.rows(), k = coeffs.cols();
  for (size_t i = 0; i < m; ++i) {
    std::memset(dst[i], 0, len);
    for (size_t j = 0; j < k; ++j) {
      const uint8_t c = coeffs.at(i, j);
      if (c == 0) continue;
      const auto& row = gf::detail::tables().mul_[c];
      for (size_t b = 0; b < len; ++b) dst[i][b] ^= row[src[j][b]];
    }
  }
}

namespace {

/// Nibble-table scalar path sharing the table layout with the SIMD kernel.
void dot_prod_tables_scalar(const std::vector<uint8_t>& tables, size_t k, size_t m,
                            const uint8_t* const* src, uint8_t* const* dst, size_t len) {
  for (size_t i = 0; i < m; ++i) {
    std::memset(dst[i], 0, len);
    for (size_t j = 0; j < k; ++j) {
      const uint8_t* e = tables.data() + (i * k + j) * 64;
      for (size_t b = 0; b < len; ++b) {
        const uint8_t x = src[j][b];
        dst[i][b] ^= static_cast<uint8_t>(e[x & 15] ^ e[32 + (x >> 4)]);
      }
    }
  }
}

#if defined(XOREC_HAVE_AVX2)
__attribute__((target("avx2"))) void dot_prod_avx2(const std::vector<uint8_t>& tables,
                                                   size_t k, size_t m,
                                                   const uint8_t* const* src,
                                                   uint8_t* const* dst, size_t len) {
  constexpr size_t kGroup = 4;  // outputs whose accumulators live in registers
  const __m256i lo_mask = _mm256_set1_epi8(0x0f);

  for (size_t i0 = 0; i0 < m; i0 += kGroup) {
    const size_t g = std::min(kGroup, m - i0);
    size_t b = 0;
    for (; b + 32 <= len; b += 32) {
      __m256i acc[kGroup] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                             _mm256_setzero_si256(), _mm256_setzero_si256()};
      for (size_t j = 0; j < k; ++j) {
        const __m256i in = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src[j] + b));
        const __m256i in_lo = _mm256_and_si256(in, lo_mask);
        const __m256i in_hi = _mm256_and_si256(_mm256_srli_epi64(in, 4), lo_mask);
        for (size_t gi = 0; gi < g; ++gi) {
          const uint8_t* e = tables.data() + ((i0 + gi) * k + j) * 64;
          const __m256i tlo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e));
          const __m256i thi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + 32));
          const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, in_lo),
                                                _mm256_shuffle_epi8(thi, in_hi));
          acc[gi] = _mm256_xor_si256(acc[gi], prod);
        }
      }
      for (size_t gi = 0; gi < g; ++gi)
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst[i0 + gi] + b), acc[gi]);
    }
    if (b < len) {
      // Ragged tail via the table-scalar path on the remaining bytes.
      for (size_t gi = 0; gi < g; ++gi) {
        uint8_t* d = dst[i0 + gi] + b;
        std::memset(d, 0, len - b);
        for (size_t j = 0; j < k; ++j) {
          const uint8_t* e = tables.data() + ((i0 + gi) * k + j) * 64;
          const uint8_t* s = src[j] + b;
          for (size_t t = 0; t < len - b; ++t)
            d[t] ^= static_cast<uint8_t>(e[s[t] & 15] ^ e[32 + (s[t] >> 4)]);
        }
      }
    }
  }
}
#endif

}  // namespace

void gf_dot_prod(const std::vector<uint8_t>& tables, size_t k, size_t m,
                 const uint8_t* const* src, uint8_t* const* dst, size_t len) {
  if (tables.size() != m * k * 64) throw std::invalid_argument("gf_dot_prod: table shape");
#if defined(XOREC_HAVE_AVX2)
  if (kernel::cpu_has_avx2()) {
    dot_prod_avx2(tables, k, m, src, dst, len);
    return;
  }
#endif
  dot_prod_tables_scalar(tables, k, m, src, dst, len);
}

IsalStyleCodec::IsalStyleCodec(size_t n, size_t p, ec::MatrixFamily family)
    : n_(n), p_(p), family_(family) {
  if (n == 0 || p == 0 || n + p > 255)
    throw std::invalid_argument("IsalStyleCodec: bad (n, p)");
  code_ = ec::make_code_matrix(family, n, p);
  std::vector<size_t> bottom(p);
  for (size_t i = 0; i < p; ++i) bottom[i] = n + i;
  parity_ = code_.select_rows(bottom);
  enc_tables_ = build_gf_tables(parity_);
}

std::string IsalStyleCodec::name() const {
  std::string name = "isal(" + std::to_string(n_) + "," + std::to_string(p_) + ")";
  // Name the matrix override too, or the name would rebuild a codec with a
  // different (incompatible) coding matrix.
  switch (family_) {
    case ec::MatrixFamily::IsalVandermonde: break;  // the default
    case ec::MatrixFamily::ReducedVandermonde: name += "@matrix=vand"; break;
    case ec::MatrixFamily::Cauchy: name += "@matrix=cauchy"; break;
  }
  return name;
}

void IsalStyleCodec::encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                                 size_t frag_len) const {
  gf_dot_prod(enc_tables_, n_, p_, data, parity, frag_len);
}

namespace {

/// Self-contained GF-table repair plan: both dot-product table sets are
/// built at plan time, execute() only gathers pointers and multiplies.
class IsalReconstructPlan final : public ReconstructPlan {
 public:
  struct Step {
    std::vector<uint8_t> tables;               // build_gf_tables of the step's matrix
    std::vector<ec::RepairLayout::Source> in;  // k sources, in matrix column order
    std::vector<size_t> out_pos;               // indices into `out`
  };

  IsalReconstructPlan(std::string codec_name, size_t k, std::vector<uint32_t> available,
                      std::vector<uint32_t> erased, std::optional<Step> decode,
                      std::optional<Step> parity)
      : ReconstructPlan(std::move(codec_name), 1, std::move(available), std::move(erased)),
        k_(k),
        decode_(std::move(decode)),
        parity_(std::move(parity)) {}

 protected:
  void execute_impl(const uint8_t* const* available_frags, uint8_t* const* out,
                    size_t frag_len) const override {
    // Reused per thread: the hot path stays allocation-free after warmup.
    thread_local std::vector<const uint8_t*> in;
    thread_local std::vector<uint8_t*> dst;
    for (const auto* step : {decode_ ? &*decode_ : nullptr, parity_ ? &*parity_ : nullptr}) {
      if (!step) continue;
      in.resize(step->in.size());
      for (size_t i = 0; i < in.size(); ++i)
        in[i] = step->in[i].from_out ? out[step->in[i].pos]
                                     : available_frags[step->in[i].pos];
      dst.resize(step->out_pos.size());
      for (size_t i = 0; i < dst.size(); ++i) dst[i] = out[step->out_pos[i]];
      gf_dot_prod(step->tables, k_, dst.size(), in.data(), dst.data(), frag_len);
    }
  }

 private:
  size_t k_;
  std::optional<Step> decode_, parity_;
};

}  // namespace

std::shared_ptr<const ReconstructPlan> IsalStyleCodec::plan_reconstruct_impl(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const {
  const ec::RepairLayout layout(n_, n_ + p_, available, erased);

  std::optional<IsalReconstructPlan::Step> decode_step;
  if (!layout.erased_data.empty()) {
    // Survivor selection mirrors RsCodec: data rows first, then parities.
    std::vector<size_t> survivors;
    for (uint32_t id = 0; id < n_ && survivors.size() < n_; ++id)
      if (layout.pos_of_id[id] != ec::RepairLayout::kAbsent) survivors.push_back(id);
    for (uint32_t id = n_; id < n_ + p_ && survivors.size() < n_; ++id)
      if (layout.pos_of_id[id] != ec::RepairLayout::kAbsent) survivors.push_back(id);
    if (survivors.size() < n_)
      throw std::invalid_argument("IsalStyleCodec: not enough survivors");

    auto minv = gf::decode_matrix(code_, survivors);
    if (!minv) throw std::logic_error("IsalStyleCodec: singular decode matrix");
    std::vector<size_t> rows(layout.erased_data.begin(), layout.erased_data.end());

    IsalReconstructPlan::Step step;
    step.tables = build_gf_tables(minv->select_rows(rows));
    for (size_t id : survivors) step.in.push_back({false, layout.pos_of_id[id]});
    step.out_pos = layout.out_pos_data;
    decode_step = std::move(step);
  }

  std::optional<IsalReconstructPlan::Step> parity_step;
  if (!layout.erased_parity.empty()) {
    std::vector<size_t> rows(layout.erased_parity.begin(), layout.erased_parity.end());
    IsalReconstructPlan::Step step;
    step.tables = build_gf_tables(code_.select_rows(rows));
    step.in.reserve(n_);
    // GF-table decode outputs stay in submission order (no canonical sort).
    for (size_t d = 0; d < n_; ++d)
      step.in.push_back(
          layout.data_source(d, layout.erased_data, layout.out_pos_data, name()));
    step.out_pos = layout.out_pos_parity;
    parity_step = std::move(step);
  }

  return std::make_shared<IsalReconstructPlan>(name(), n_, available, erased,
                                               std::move(decode_step),
                                               std::move(parity_step));
}

void IsalStyleCodec::reconstruct_impl(const std::vector<uint32_t>& available,
                                      const uint8_t* const* available_frags,
                                      const std::vector<uint32_t>& erased, uint8_t* const* out,
                                      size_t frag_len) const {
  plan_reconstruct_impl(available, erased)->execute(available_frags, out, frag_len);
}

}  // namespace xorec::baseline
