#include "baseline/isal_style.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kernel/xor_kernel.hpp"

#if defined(XOREC_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace xorec::baseline {

std::vector<uint8_t> build_gf_tables(const gf::Matrix& coeffs) {
  const size_t m = coeffs.rows(), k = coeffs.cols();
  std::vector<uint8_t> t(m * k * 64);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      uint8_t* e = t.data() + (i * k + j) * 64;
      const uint8_t c = coeffs.at(i, j);
      for (int x = 0; x < 16; ++x) {
        const uint8_t lo = gf::mul(c, static_cast<uint8_t>(x));
        const uint8_t hi = gf::mul(c, static_cast<uint8_t>(x << 4));
        e[x] = lo;
        e[16 + x] = lo;   // low table duplicated across both AVX2 lanes
        e[32 + x] = hi;
        e[48 + x] = hi;
      }
    }
  }
  return t;
}

void gf_dot_prod_scalar(const gf::Matrix& coeffs, const uint8_t* const* src,
                        uint8_t* const* dst, size_t len) {
  const size_t m = coeffs.rows(), k = coeffs.cols();
  for (size_t i = 0; i < m; ++i) {
    std::memset(dst[i], 0, len);
    for (size_t j = 0; j < k; ++j) {
      const uint8_t c = coeffs.at(i, j);
      if (c == 0) continue;
      const auto& row = gf::detail::tables().mul_[c];
      for (size_t b = 0; b < len; ++b) dst[i][b] ^= row[src[j][b]];
    }
  }
}

namespace {

/// Nibble-table scalar path sharing the table layout with the SIMD kernel.
void dot_prod_tables_scalar(const std::vector<uint8_t>& tables, size_t k, size_t m,
                            const uint8_t* const* src, uint8_t* const* dst, size_t len) {
  for (size_t i = 0; i < m; ++i) {
    std::memset(dst[i], 0, len);
    for (size_t j = 0; j < k; ++j) {
      const uint8_t* e = tables.data() + (i * k + j) * 64;
      for (size_t b = 0; b < len; ++b) {
        const uint8_t x = src[j][b];
        dst[i][b] ^= static_cast<uint8_t>(e[x & 15] ^ e[32 + (x >> 4)]);
      }
    }
  }
}

#if defined(XOREC_HAVE_AVX2)
__attribute__((target("avx2"))) void dot_prod_avx2(const std::vector<uint8_t>& tables,
                                                   size_t k, size_t m,
                                                   const uint8_t* const* src,
                                                   uint8_t* const* dst, size_t len) {
  constexpr size_t kGroup = 4;  // outputs whose accumulators live in registers
  const __m256i lo_mask = _mm256_set1_epi8(0x0f);

  for (size_t i0 = 0; i0 < m; i0 += kGroup) {
    const size_t g = std::min(kGroup, m - i0);
    size_t b = 0;
    for (; b + 32 <= len; b += 32) {
      __m256i acc[kGroup] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                             _mm256_setzero_si256(), _mm256_setzero_si256()};
      for (size_t j = 0; j < k; ++j) {
        const __m256i in = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src[j] + b));
        const __m256i in_lo = _mm256_and_si256(in, lo_mask);
        const __m256i in_hi = _mm256_and_si256(_mm256_srli_epi64(in, 4), lo_mask);
        for (size_t gi = 0; gi < g; ++gi) {
          const uint8_t* e = tables.data() + ((i0 + gi) * k + j) * 64;
          const __m256i tlo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e));
          const __m256i thi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + 32));
          const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, in_lo),
                                                _mm256_shuffle_epi8(thi, in_hi));
          acc[gi] = _mm256_xor_si256(acc[gi], prod);
        }
      }
      for (size_t gi = 0; gi < g; ++gi)
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst[i0 + gi] + b), acc[gi]);
    }
    if (b < len) {
      // Ragged tail via the table-scalar path on the remaining bytes.
      for (size_t gi = 0; gi < g; ++gi) {
        uint8_t* d = dst[i0 + gi] + b;
        std::memset(d, 0, len - b);
        for (size_t j = 0; j < k; ++j) {
          const uint8_t* e = tables.data() + ((i0 + gi) * k + j) * 64;
          const uint8_t* s = src[j] + b;
          for (size_t t = 0; t < len - b; ++t)
            d[t] ^= static_cast<uint8_t>(e[s[t] & 15] ^ e[32 + (s[t] >> 4)]);
        }
      }
    }
  }
}
#endif

}  // namespace

void gf_dot_prod(const std::vector<uint8_t>& tables, size_t k, size_t m,
                 const uint8_t* const* src, uint8_t* const* dst, size_t len) {
  if (tables.size() != m * k * 64) throw std::invalid_argument("gf_dot_prod: table shape");
#if defined(XOREC_HAVE_AVX2)
  if (kernel::cpu_has_avx2()) {
    dot_prod_avx2(tables, k, m, src, dst, len);
    return;
  }
#endif
  dot_prod_tables_scalar(tables, k, m, src, dst, len);
}

IsalStyleCodec::IsalStyleCodec(size_t n, size_t p, ec::MatrixFamily family)
    : n_(n), p_(p), family_(family) {
  if (n == 0 || p == 0 || n + p > 255)
    throw std::invalid_argument("IsalStyleCodec: bad (n, p)");
  code_ = ec::make_code_matrix(family, n, p);
  std::vector<size_t> bottom(p);
  for (size_t i = 0; i < p; ++i) bottom[i] = n + i;
  parity_ = code_.select_rows(bottom);
  enc_tables_ = build_gf_tables(parity_);
}

std::string IsalStyleCodec::name() const {
  std::string name = "isal(" + std::to_string(n_) + "," + std::to_string(p_) + ")";
  // Name the matrix override too, or the name would rebuild a codec with a
  // different (incompatible) coding matrix.
  switch (family_) {
    case ec::MatrixFamily::IsalVandermonde: break;  // the default
    case ec::MatrixFamily::ReducedVandermonde: name += "@matrix=vand"; break;
    case ec::MatrixFamily::Cauchy: name += "@matrix=cauchy"; break;
  }
  return name;
}

void IsalStyleCodec::encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                                 size_t frag_len) const {
  gf_dot_prod(enc_tables_, n_, p_, data, parity, frag_len);
}

void IsalStyleCodec::reconstruct_impl(const std::vector<uint32_t>& available,
                                      const uint8_t* const* available_frags,
                                      const std::vector<uint32_t>& erased, uint8_t* const* out,
                                      size_t frag_len) const {
  std::vector<const uint8_t*> frag_by_id(n_ + p_, nullptr);
  for (size_t i = 0; i < available.size(); ++i) frag_by_id[available[i]] = available_frags[i];

  std::vector<uint32_t> erased_data, erased_parity;
  std::vector<uint8_t*> out_data, out_parity;
  for (size_t i = 0; i < erased.size(); ++i) {
    if (erased[i] < n_) {
      erased_data.push_back(erased[i]);
      out_data.push_back(out[i]);
    } else {
      erased_parity.push_back(erased[i]);
      out_parity.push_back(out[i]);
    }
  }

  if (!erased_data.empty()) {
    // Survivor selection mirrors RsCodec: data rows first, then parities.
    std::vector<size_t> survivors;
    for (uint32_t id = 0; id < n_ + p_ && survivors.size() < n_; ++id)
      if (frag_by_id[id] != nullptr && id < n_) survivors.push_back(id);
    for (uint32_t id = n_; id < n_ + p_ && survivors.size() < n_; ++id)
      if (frag_by_id[id] != nullptr) survivors.push_back(id);
    if (survivors.size() < n_)
      throw std::invalid_argument("IsalStyleCodec: not enough survivors");

    auto minv = gf::decode_matrix(code_, survivors);
    if (!minv) throw std::logic_error("IsalStyleCodec: singular decode matrix");
    std::vector<size_t> rows(erased_data.begin(), erased_data.end());
    const gf::Matrix recovery = minv->select_rows(rows);
    const auto tables = build_gf_tables(recovery);

    std::vector<const uint8_t*> in(survivors.size());
    for (size_t i = 0; i < survivors.size(); ++i) in[i] = frag_by_id[survivors[i]];
    gf_dot_prod(tables, n_, erased_data.size(), in.data(), out_data.data(), frag_len);

    for (size_t i = 0; i < erased_data.size(); ++i) frag_by_id[erased_data[i]] = out_data[i];
  }

  if (!erased_parity.empty()) {
    std::vector<size_t> rows(erased_parity.begin(), erased_parity.end());
    const gf::Matrix rebuilt = code_.select_rows(rows);
    const auto tables = build_gf_tables(rebuilt);
    std::vector<const uint8_t*> data_in(n_);
    for (size_t d = 0; d < n_; ++d) {
      if (frag_by_id[d] == nullptr)
        throw std::invalid_argument(
            "IsalStyleCodec: data fragment " + std::to_string(d) +
            " unavailable for parity repair; list it in erased or provide it");
      data_in[d] = frag_by_id[d];
    }
    gf_dot_prod(tables, n_, erased_parity.size(), data_in.data(), out_parity.data(), frag_len);
  }
}

}  // namespace xorec::baseline
