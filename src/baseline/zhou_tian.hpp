// Comparator in the style of Zhou & Tian [103] (source never released; see
// DESIGN.md substitution #2): bitmatrix XOR scheduling *without* SLPs.
//
// Stage (i) — XOR reduction ([48, 82] style): each output row is computed
// either from scratch or incrementally from the nearest previously computed
// output row (minimum Hamming distance), with no recursive pairing and no
// ⊕-cancellation bookkeeping beyond the row diff. This lands in the ≈65%
// reduction-ratio regime the paper quotes for [103].
//
// Stage (ii) — local XOR reordering ([72] style): reorders instructions,
// dependencies permitting, so consecutive instructions share operands.
#pragma once

#include "bitmatrix/bitmatrix.hpp"
#include "slp/program.hpp"

namespace xorec::baseline {

/// Stage (i). Returns a (generally non-flat) SLP: instructions may reference
/// previously computed outputs. Executed in binary form like the Base.
slp::Program incremental_schedule(const bitmatrix::BitMatrix& m, std::string name = {});

/// Stage (ii). Topology-preserving greedy reorder maximizing operand overlap
/// between consecutive instructions.
slp::Program reorder_for_locality(const slp::Program& p);

}  // namespace xorec::baseline
