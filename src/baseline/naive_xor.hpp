// The paper's "Base" configuration: unoptimized SLPs straight from the
// bitmatrix, executed as chains of binary XORs (3 memory accesses per XOR).
// Thin preset over RsCodec so comparison benches construct it uniformly.
#pragma once

#include "ec/rs_codec.hpp"

namespace xorec::baseline {

/// CodecOptions with every optimizer pass disabled.
ec::CodecOptions naive_xor_options(size_t block_size = 2048,
                                   kernel::Isa isa = kernel::Isa::Auto);

/// RS(n, p) running raw bitmatrix XOR chains.
ec::RsCodec make_naive_codec(size_t n, size_t p, size_t block_size = 2048,
                             kernel::Isa isa = kernel::Isa::Auto);

}  // namespace xorec::baseline
