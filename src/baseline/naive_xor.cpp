#include "baseline/naive_xor.hpp"

namespace xorec::baseline {

ec::CodecOptions naive_xor_options(size_t block_size, kernel::Isa isa) {
  ec::CodecOptions opt;
  opt.pipeline.compress = slp::CompressKind::None;
  opt.pipeline.fuse = false;
  opt.pipeline.schedule = slp::ScheduleKind::None;
  opt.exec.block_size = block_size;
  opt.exec.isa = isa;
  return opt;
}

ec::RsCodec make_naive_codec(size_t n, size_t p, size_t block_size, kernel::Isa isa) {
  return ec::RsCodec(n, p, naive_xor_options(block_size, isa));
}

}  // namespace xorec::baseline
