// ISA-L-style baseline (DESIGN.md substitution #1): systematic RS(n, p)
// computed as matrix multiplication over GF(2^8) with table-driven SIMD
// multiplication — the approach the paper compares against (§1 method (1),
// §7.6).
//
// Multiplication uses the split-nibble technique of ISA-L / Plank et al.
// (FAST'13): for a coefficient c, two 16-byte tables hold c·x for the low
// and high nibble of x; a byte product is tlo[x & 15] ^ thi[x >> 4], which
// vectorizes as two VPSHUFBs. Each 32-byte chunk of every input fragment is
// read once per output group while p accumulators stay in registers.
#pragma once

#include <cstdint>
#include <vector>

#include "api/codec.hpp"
#include "ec/rs_codec.hpp"
#include "gf/gfmat.hpp"

namespace xorec::baseline {

/// Precomputed nibble tables for an m x k coefficient matrix, laid out as
/// [i][j][64]: 16B low-nibble table, 16B high-nibble table, repeated twice
/// (32B each) so AVX2 lanes can load them directly.
std::vector<uint8_t> build_gf_tables(const gf::Matrix& coeffs);

/// dst[i] = XOR_j coeffs[i][j] * src[j], byte-wise over len bytes.
/// `tables` must come from build_gf_tables(coeffs) with matching shape.
void gf_dot_prod(const std::vector<uint8_t>& tables, size_t k, size_t m,
                 const uint8_t* const* src, uint8_t* const* dst, size_t len);

/// Scalar reference (full 64 KB multiplication table); used as oracle.
void gf_dot_prod_scalar(const gf::Matrix& coeffs, const uint8_t* const* src,
                        uint8_t* const* dst, size_t len);

class IsalStyleCodec : public Codec {
 public:
  /// Defaults to the same coding matrix RsCodec uses, so the two engines are
  /// byte-comparable (after the bit-plane layout transform; see ec/layout.hpp).
  IsalStyleCodec(size_t n, size_t p,
                 ec::MatrixFamily family = ec::MatrixFamily::IsalVandermonde);

  size_t data_fragments() const override { return n_; }
  size_t parity_fragments() const override { return p_; }
  /// Byte-oriented: any positive fragment length works.
  size_t fragment_multiple() const override { return 1; }
  std::string name() const override;
  const gf::Matrix& code_matrix() const { return code_; }

 protected:
  void encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                   size_t frag_len) const override;
  /// Same contract as RsCodec::reconstruct (data decoded via the inverse
  /// submatrix, parity re-encoded afterwards); thin plan-and-execute.
  void reconstruct_impl(const std::vector<uint32_t>& available,
                        const uint8_t* const* available_frags,
                        const std::vector<uint32_t>& erased, uint8_t* const* out,
                        size_t frag_len) const override;
  /// The plan precomputes the inverse submatrix's nibble tables, so
  /// execute() is pure gf_dot_prod work (no per-call matrix inversion).
  /// PlanStats stay zero: the GF-table engine is not an XOR SLP.
  std::shared_ptr<const ReconstructPlan> plan_reconstruct_impl(
      const std::vector<uint32_t>& available,
      const std::vector<uint32_t>& erased) const override;

 private:
  size_t n_, p_;
  ec::MatrixFamily family_;
  gf::Matrix code_;          // systematic (n+p) x n, same matrix as RsCodec
  gf::Matrix parity_;        // bottom p rows
  std::vector<uint8_t> enc_tables_;
};

}  // namespace xorec::baseline
